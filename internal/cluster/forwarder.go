package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"ldp/internal/pipeline"
	"ldp/internal/telemetry"
)

// MergeAck is the JSON body a root returns for an accepted or
// deduplicated POST /v1/merge.
type MergeAck struct {
	Edge    string `json:"edge"`
	Seq     uint64 `json:"seq"`
	Applied bool   `json:"applied"`
	Boot    string `json:"boot"`
}

// BootHeader is the response header carrying the root's boot ID on
// every /v1/merge response; an edge whose delta was computed against a
// different boot resynchronizes before pushing again.
const BootHeader = "Ldp-Boot"

// ForwarderConfig configures the edge side of the fan-in tier.
type ForwarderConfig struct {
	// RootURL is the root aggregator's base URL (e.g. http://root:8080).
	RootURL string
	// EdgeID identifies this edge to the root; it must be stable across
	// edge restarts so recovered state deduplicates correctly.
	EdgeID string
	// Interval is the push cadence for Run (default 5s).
	Interval time.Duration
	// HTTPClient overrides the HTTP client (default: 10s-timeout client).
	HTTPClient *http.Client
	// Retry bounds per-push retries (default DefaultRetryPolicy).
	Retry RetryPolicy
	// Breaker tunes the push circuit breaker; the zero value uses the
	// defaults (trip after 3 consecutive root failures, probe after a
	// jittered exponential cooldown). The breaker cannot be disabled: a
	// dead root should cost an edge one cheap fail-fast check per cycle,
	// not a full snapshot encode plus a retried push.
	Breaker BreakerConfig
	// Sync, when set, is called after snapshotting and before pushing —
	// typically the WAL's fsync — so everything the root acknowledges is
	// durable locally and a recovered edge's state is always a superset
	// of its acked baseline.
	Sync func() error
	// Logger, when set, logs push outcomes.
	Logger *slog.Logger
	// Registry, when set, registers forwarder metrics.
	Registry *telemetry.Registry
}

// pendingPush is an encoded delta awaiting acknowledgement. The frame is
// immutable once built: retries resend the identical bytes under the
// same sequence number, so the root's dedup makes redelivery harmless.
type pendingPush struct {
	seq   uint64
	cum   *pipeline.AggState // cumulative state the delta extends to
	frame []byte
}

type forwarderMetrics struct {
	pushApplied   *telemetry.Counter
	pushDuplicate *telemetry.Counter
	pushFailed    *telemetry.Counter
	pushSkipped   *telemetry.Counter
	reports       *telemetry.Counter
	bytes         *telemetry.Counter
	resyncs       *telemetry.Counter
}

// Forwarder ships a pipeline's aggregate deltas to a root. One cycle
// snapshots the pipeline, subtracts the last acknowledged cumulative
// state, and POSTs the delta to /v1/merge under a fresh sequence number;
// on acknowledgement the cumulative state advances. Because the delta is
// derived from acknowledged state and retried byte-identically, every
// report is folded into the root exactly once regardless of crashes,
// retries, or root restarts.
type Forwarder struct {
	p    *pipeline.Pipeline
	cfg  ForwarderConfig
	fp   uint64
	http *http.Client
	met  *forwarderMetrics
	brk  *Breaker

	mu      sync.Mutex
	boot    string // root boot ID; empty forces a resync before pushing
	seq     uint64
	acked   *pipeline.AggState // cumulative state the root has applied
	pending *pendingPush
	buf     []byte // frame encode buffer, recycled across pushes
}

// NewForwarder validates the configuration and returns a forwarder. The
// pipeline must not run a federated-gradient task: training state is not
// additive and cannot fan in.
func NewForwarder(p *pipeline.Pipeline, cfg ForwarderConfig) (*Forwarder, error) {
	if p == nil {
		return nil, fmt.Errorf("cluster: nil pipeline")
	}
	if p.GradientTask() != nil {
		return nil, fmt.Errorf("cluster: cannot forward from a pipeline with a federated-gradient task")
	}
	if cfg.RootURL == "" {
		return nil, fmt.Errorf("cluster: forwarder requires a root URL")
	}
	if cfg.EdgeID == "" || len(cfg.EdgeID) > MaxEdgeIDLen {
		return nil, fmt.Errorf("cluster: edge ID length %d outside [1,%d]", len(cfg.EdgeID), MaxEdgeIDLen)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	f := &Forwarder{p: p, cfg: cfg, fp: p.Fingerprint()}
	f.http = cfg.HTTPClient
	if f.http == nil {
		f.http = &http.Client{Timeout: 10 * time.Second}
	}
	f.brk = NewBreaker(cfg.Breaker, cfg.Registry, "forwarder")
	if reg := cfg.Registry; reg != nil {
		f.met = &forwarderMetrics{
			pushApplied:   reg.Counter("ldp_forwarder_pushes_total", "Push attempts by result.", telemetry.L("result", "applied")),
			pushDuplicate: reg.Counter("ldp_forwarder_pushes_total", "Push attempts by result.", telemetry.L("result", "duplicate")),
			pushFailed:    reg.Counter("ldp_forwarder_pushes_total", "Push attempts by result.", telemetry.L("result", "failed")),
			pushSkipped:   reg.Counter("ldp_forwarder_pushes_total", "Push attempts by result.", telemetry.L("result", "breaker_skipped")),
			reports:       reg.Counter("ldp_forwarder_pushed_reports_total", "Reports acknowledged by the root."),
			bytes:         reg.Counter("ldp_forwarder_pushed_bytes_total", "Snapshot bytes acknowledged by the root."),
			resyncs:       reg.Counter("ldp_forwarder_resyncs_total", "Resynchronizations against the root."),
		}
		reg.GaugeFunc("ldp_forwarder_acked_seq", "Last acknowledged push sequence number.", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.seq)
		})
		reg.GaugeFunc("ldp_forwarder_acked_reports", "Reports covered by the acknowledged cumulative state.", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			if f.acked == nil {
				return 0
			}
			return float64(f.acked.Total())
		})
	}
	return f, nil
}

// Run pushes on the configured interval until ctx is cancelled. Push
// errors are logged and retried on the next tick; they never stop the
// loop.
func (f *Forwarder) Run(ctx context.Context) {
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := f.Push(ctx); err != nil && f.cfg.Logger != nil {
				f.cfg.Logger.Warn("fan-in push failed", "edge", f.cfg.EdgeID, "err", err)
			}
		}
	}
}

// Acked returns the last acknowledged sequence number and the number of
// reports the root has applied from this edge.
func (f *Forwarder) Acked() (seq uint64, reports int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.acked != nil {
		reports = f.acked.Total()
	}
	return f.seq, reports
}

// Breaker exposes the push circuit breaker (for readiness checks and
// tests).
func (f *Forwarder) Breaker() *Breaker { return f.brk }

// Push runs one fan-in cycle: resynchronize with the root if needed,
// build (or reuse) the pending delta frame, and deliver it. A cycle with
// no new reports is a no-op.
//
// The circuit breaker gates the whole cycle. While it is open, Push fails
// fast with ErrBreakerOpen — no snapshot, no delta encode, no network —
// until the jittered probe deadline passes; the probe cycle then runs a
// cheap resync (one small GET, no snapshot encode) and only a probe that
// succeeds closes the breaker and lets the full push path run again.
// Root-side failures (connection errors, 5xx, rejected pushes, a
// fingerprint-mismatched root) count toward tripping it; local failures
// (snapshot, WAL sync) and a root reboot answer (the root is alive and
// asking for a resync) do not.
func (f *Forwarder) Push(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	allowed, probe := f.brk.Allow()
	if !allowed {
		if f.met != nil {
			f.met.pushSkipped.Inc()
		}
		return ErrBreakerOpen
	}
	if probe {
		// Half-open trial: the cheapest possible root round trip. Forcing
		// a resync is also semantically safe at any time — it only
		// re-derives the acked baseline.
		if err := f.resyncLocked(ctx); err != nil {
			f.brk.Failure()
			f.countFailed()
			return err
		}
		f.brk.Success()
	}
	if f.boot == "" {
		if err := f.resyncLocked(ctx); err != nil {
			f.brk.Failure()
			f.countFailed()
			return err
		}
	}
	if f.pending == nil {
		if err := f.buildPendingLocked(); err != nil {
			// Local-only failure: the root was never contacted, so the
			// breaker learns nothing from it.
			f.countFailed()
			return err
		}
		if f.pending == nil { // nothing new to ship
			return nil
		}
	}
	if err := f.deliverLocked(ctx); err != nil {
		if !errors.Is(err, errRootRebooted) {
			f.brk.Failure()
		}
		f.countFailed()
		return err
	}
	f.brk.Success()
	return nil
}

func (f *Forwarder) countFailed() {
	if f.met != nil {
		f.met.pushFailed.Inc()
	}
}

// errRootRebooted marks a 412 boot-mismatch answer: the root is alive —
// it just restarted — so the push is retried after a resync and the
// circuit breaker does not count it as a root failure.
var errRootRebooted = errors.New("cluster: root rebooted")

// buildPendingLocked snapshots the pipeline and encodes the delta since
// the acked baseline. The order matters for crash-exactness: snapshot
// first, then fsync the WAL (cfg.Sync), then expose the frame — so any
// state the root might acknowledge is already durable on the edge, and a
// recovered edge replays a superset of its acked baseline.
func (f *Forwarder) buildPendingLocked() error {
	cum := f.p.StateSnapshot()
	cum.Trainer = nil
	if f.cfg.Sync != nil {
		if err := f.cfg.Sync(); err != nil {
			return fmt.Errorf("cluster: pre-push sync: %w", err)
		}
	}
	delta, err := cum.Sub(f.acked)
	if err != nil {
		return fmt.Errorf("cluster: delta since acked state: %w", err)
	}
	if delta.Total() == 0 {
		return nil
	}
	snap := Snapshot{
		Fingerprint: f.fp,
		Edge:        f.cfg.EdgeID,
		Seq:         f.seq + 1,
		Boot:        f.boot,
		State:       delta,
	}
	frame, err := AppendSnapshot(f.buf[:0], &snap)
	if err != nil {
		return err
	}
	f.buf = frame
	f.seq++
	f.pending = &pendingPush{seq: f.seq, cum: cum, frame: frame}
	return nil
}

// deliverLocked POSTs the pending frame under the retry policy and
// settles the outcome.
func (f *Forwarder) deliverLocked(ctx context.Context) error {
	pend := f.pending
	var ack MergeAck
	var permanent error
	err := f.cfg.Retry.Do(ctx, func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.cfg.RootURL+"/v1/merge", bytes.NewReader(pend.frame))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := f.http.Do(req)
		if err != nil {
			return true, err // connection errors are retryable
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return false, json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack)
		case resp.StatusCode == http.StatusPreconditionFailed:
			// Root restarted: the delta's baseline is gone. Drop the
			// pending frame and resync on the next cycle.
			permanent = fmt.Errorf("%w (boot %q)", errRootRebooted, resp.Header.Get(BootHeader))
			return false, permanent
		case resp.StatusCode == http.StatusTooManyRequests:
			// The root is shedding load: retryable, at the cadence it asked
			// for.
			return true, &RetryAfterError{
				Err:   fmt.Errorf("cluster: root shedding load: %s", resp.Status),
				After: ParseRetryAfter(resp.Header.Get("Retry-After")),
			}
		case resp.StatusCode >= 500:
			return true, fmt.Errorf("cluster: root returned %s", resp.Status)
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			permanent = fmt.Errorf("cluster: root rejected push: %s: %s", resp.Status, body)
			return false, permanent
		}
	})
	if err != nil {
		if permanent != nil && err == permanent {
			// Unwind the unacknowledged sequence so the rebuilt delta
			// reuses it; on a reboot also force a resync.
			f.pending = nil
			f.seq = pend.seq - 1
			f.boot = ""
		}
		return err
	}
	if ack.Boot != f.boot || ack.Seq != pend.seq {
		// The root answered for a different epoch or sequence; treat the
		// push as unsettled and resync.
		wantBoot := f.boot
		f.pending = nil
		f.seq = pend.seq - 1
		f.boot = ""
		return fmt.Errorf("cluster: ack mismatch: got seq %d boot %q, want seq %d boot %q", ack.Seq, ack.Boot, pend.seq, wantBoot)
	}
	pushed := pend.cum.Total()
	if f.acked != nil {
		pushed -= f.acked.Total()
	}
	f.acked = pend.cum
	f.pending = nil
	if f.met != nil {
		if ack.Applied {
			f.met.pushApplied.Inc()
		} else {
			f.met.pushDuplicate.Inc()
		}
		if pushed > 0 {
			f.met.reports.Add(uint64(pushed))
		}
		f.met.bytes.Add(uint64(len(pend.frame)))
	}
	if f.cfg.Logger != nil {
		f.cfg.Logger.Debug("fan-in push acked", "edge", f.cfg.EdgeID, "seq", pend.seq, "applied", ack.Applied, "reports", pushed)
	}
	return nil
}

// resyncLocked recovers the acknowledged baseline from the root via
// GET /v1/merge?edge=ID: a known edge gets back a snapshot of its
// applied cumulative state (so a restarted edge, or an edge that
// observed a root reboot, never re-derives deltas from guesswork); an
// unknown edge starts from zero under the root's current boot ID.
func (f *Forwarder) resyncLocked(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.RootURL+"/v1/merge?edge="+f.cfg.EdgeID, nil)
	if err != nil {
		return err
	}
	resp, err := f.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxSnapshotSize+14))
		if err != nil {
			return err
		}
		snap, err := DecodeSnapshot(raw)
		if err != nil {
			return fmt.Errorf("cluster: resync snapshot: %w", err)
		}
		if snap.Fingerprint != f.fp {
			return fmt.Errorf("cluster: root fingerprint %016x does not match local %016x", snap.Fingerprint, f.fp)
		}
		if snap.Boot == "" {
			return fmt.Errorf("cluster: resync snapshot without a boot ID")
		}
		f.boot = snap.Boot
		f.seq = snap.Seq
		f.acked = snap.State
	case http.StatusNotFound:
		boot := resp.Header.Get(BootHeader)
		if boot == "" {
			return fmt.Errorf("cluster: root did not identify its boot epoch")
		}
		f.boot = boot
		f.seq = 0
		f.acked = nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: resync failed: %s: %s", resp.Status, body)
	}
	f.pending = nil
	if f.met != nil {
		f.met.resyncs.Inc()
	}
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info("fan-in resynchronized", "edge", f.cfg.EdgeID, "boot", f.boot, "seq", f.seq)
	}
	return nil
}
