package cluster

import (
	"context"
	"math/rand/v2"
	"time"
)

// RetryPolicy bounds a retry loop with exponential backoff and full
// jitter: attempt k (0-based) sleeps a uniform random duration in
// [0, min(MaxDelay, BaseDelay<<k)] before retrying. Full jitter keeps a
// fleet of edges that lost the same root from thundering back in phase.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is shared by the transport client and the edge
// forwarder: four tries spread over roughly a second.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

// withDefaults fills zero fields so a partially specified policy behaves.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// Do runs attempt until it succeeds, reports a non-retryable error, or
// the policy's attempts are exhausted. attempt returns (retryable, err):
// err == nil stops with success; retryable == false stops with that
// error; otherwise Do backs off and tries again, returning the last
// error when attempts run out. Context cancellation interrupts the
// backoff sleep and returns ctx.Err().
func (p RetryPolicy) Do(ctx context.Context, attempt func() (retryable bool, err error)) error {
	p = p.withDefaults()
	var lastErr error
	for i := 0; i < p.MaxAttempts; i++ {
		if i > 0 {
			if err := sleepJitter(ctx, p.backoff(i-1)); err != nil {
				return err
			}
		}
		retryable, err := attempt()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// backoff returns the cap for retry k (0-based): min(MaxDelay, Base<<k).
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < k; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// sleepJitter sleeps a uniform random duration in [0, cap], returning
// early with ctx.Err() on cancellation.
func sleepJitter(ctx context.Context, cap time.Duration) error {
	if cap <= 0 {
		return ctx.Err()
	}
	d := rand.N(cap + 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
