package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"
)

// RetryPolicy bounds a retry loop with exponential backoff and full
// jitter: attempt k (0-based) sleeps a uniform random duration in
// [0, min(MaxDelay, BaseDelay<<k)] before retrying. Full jitter keeps a
// fleet of edges that lost the same root from thundering back in phase.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (and any server-provided
	// Retry-After hint).
	MaxDelay time.Duration
	// MaxElapsed caps the whole loop's wall clock: Do derives a context
	// deadline from it, so in-flight attempts are cancelled too, not just
	// the sleeps between them. Without it a root that accepts connections
	// but trickles its response can stall a client batch for MaxAttempts x
	// the transport timeout. Zero falls back to the default cap; a
	// negative value disables the bound entirely (the caller's own
	// context still applies).
	MaxElapsed time.Duration
}

// DefaultRetryPolicy is shared by the transport client and the edge
// forwarder: four tries spread over roughly a second, the whole loop cut
// off after 30 seconds of wall clock.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   50 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	MaxElapsed:  30 * time.Second,
}

// RetryAfterError wraps a retryable failure that carries the server's
// explicit backpressure hint (a 429 with Retry-After). Retry loops that
// see it sleep the hinted duration — capped by the policy's MaxDelay —
// instead of their own exponential guess, so a shedding aggregator
// controls the cadence its clients come back at.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string { return e.Err.Error() }

func (e *RetryAfterError) Unwrap() error { return e.Err }

// withDefaults fills zero fields so a partially specified policy behaves.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	switch {
	case p.MaxElapsed == 0:
		p.MaxElapsed = DefaultRetryPolicy.MaxElapsed
	case p.MaxElapsed < 0:
		p.MaxElapsed = 0
	}
	return p
}

// Do runs attempt until it succeeds, reports a non-retryable error, or
// the policy's attempts (or wall clock) are exhausted. attempt receives
// the context every in-flight request should be built on: when MaxElapsed
// is set, it carries the loop's deadline. attempt returns (retryable,
// err): err == nil stops with success; retryable == false stops with that
// error; otherwise Do backs off and tries again, returning the last error
// when attempts run out. A retryable *RetryAfterError replaces the
// exponential backoff with the server's hint (capped at MaxDelay).
// Context cancellation interrupts the backoff sleep and returns ctx.Err().
func (p RetryPolicy) Do(ctx context.Context, attempt func(ctx context.Context) (retryable bool, err error)) error {
	p = p.withDefaults()
	if p.MaxElapsed > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.MaxElapsed)
		defer cancel()
	}
	var lastErr error
	for i := 0; i < p.MaxAttempts; i++ {
		if i > 0 {
			lo, span := p.delay(i-1, lastErr)
			if err := sleepJitter(ctx, lo, span); err != nil {
				// The loop's clock (or the caller) ran out mid-backoff;
				// carry both the cancellation and the last attempt's error,
				// which says more than "context deadline exceeded" alone.
				return fmt.Errorf("%w (giving up: %w)", lastErr, err)
			}
		}
		retryable, err := attempt(ctx)
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// delay returns the sleep bounds before retry k (0-based). The
// exponential schedule uses full jitter — uniform in [0, min(MaxDelay,
// Base<<k)] — so a fleet that failed together retries out of phase. An
// explicit Retry-After hint instead becomes a floor (the server asked for
// at least that long) with a BaseDelay-wide jitter band on top, capped at
// MaxDelay so a hostile or confused server cannot park clients forever.
func (p RetryPolicy) delay(k int, lastErr error) (lo, span time.Duration) {
	var ra *RetryAfterError
	if errors.As(lastErr, &ra) && ra.After > 0 {
		lo = min(ra.After, p.MaxDelay)
		return lo, p.BaseDelay
	}
	return 0, p.backoff(k)
}

// backoff returns the cap for retry k (0-based): min(MaxDelay, Base<<k).
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < k; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// ParseRetryAfter parses a Retry-After response header: either a decimal
// number of seconds or an HTTP date. It returns 0 — no hint, fall back to
// the policy's own backoff — for an absent or malformed value, or a date
// in the past.
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := time.Parse(time.RFC1123, v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// sleepJitter sleeps lo plus a uniform random duration in [0, span],
// returning early with ctx.Err() on cancellation.
func sleepJitter(ctx context.Context, lo, span time.Duration) error {
	d := lo
	if span > 0 {
		d += rand.N(span + 1)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
