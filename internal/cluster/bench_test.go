package cluster

import (
	"testing"
)

// benchSnapshot builds a realistic snapshot: full analytics state from a
// pipeline with hierarchy + grid range estimators.
func benchSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	p := clusterPipeline(b)
	ingest(b, 97, 256, p)
	return &Snapshot{
		Fingerprint: p.Fingerprint(),
		Edge:        "bench-edge",
		Seq:         1,
		Boot:        "bench-boot",
		State:       p.StateSnapshot(),
	}
}

func BenchmarkAppendSnapshot(b *testing.B) {
	snap := benchSnapshot(b)
	buf, err := EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendSnapshot(buf[:0], snap)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSnapshot(b *testing.B) {
	snap := benchSnapshot(b)
	frame, err := EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	var s Snapshot
	if err := DecodeSnapshotInto(frame, &s); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeSnapshotInto(frame, &s); err != nil {
			b.Fatal(err)
		}
	}
}
