package cluster

import (
	"errors"
	"math/rand/v2"
	"sync"
	"time"

	"ldp/internal/telemetry"
)

// ErrBreakerOpen reports a push skipped because the forwarder's circuit
// breaker is open and the next probe is not yet due. It is expected
// steady-state noise while a root is down: callers should keep their
// cadence (the breaker decides when to probe), not treat it as a fresh
// failure.
var ErrBreakerOpen = errors.New("cluster: circuit breaker open")

// BreakerState enumerates the classic three circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed passes traffic through and counts failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the probe deadline passes.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String returns the state's Prometheus-friendly name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value gets sane defaults.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker open (default 3).
	Threshold int
	// Cooldown is the base open->half-open delay (default 5s). Repeated
	// trips back off exponentially from it.
	Cooldown time.Duration
	// MaxCooldown caps the exponential growth (default 2m).
	MaxCooldown time.Duration

	// now and jitter are test seams; nil uses the real clock and PRNG.
	now    func() time.Time
	jitter func() float64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 2 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	return c
}

// Breaker is a classic closed -> open -> half-open circuit breaker.
// Closed, every call is allowed and consecutive failures are counted;
// at Threshold it opens and fails fast. After a jittered cooldown —
// uniform in [cooldown/2, cooldown], growing exponentially with repeated
// trips so a long-dead root is probed ever more lazily, and jittered so a
// fleet of edges does not probe a recovering root in phase — exactly one
// probe is let through (half-open). The probe's outcome closes the
// breaker or re-opens it for the next, longer cooldown.
//
// It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	trips    int       // consecutive opens without an intervening success
	probeAt  time.Time // when open: earliest next probe

	// Transition counters (nil-safe no-ops without a registry).
	toOpen     *telemetry.Counter
	toHalfOpen *telemetry.Counter
	toClosed   *telemetry.Counter
}

// NewBreaker builds a breaker. A non-nil registry gets the
// ldp_breaker_transitions_total counter family and an ldp_breaker_state
// gauge (0=closed, 1=open, 2=half-open), labelled by name so several
// breakers (e.g. one per forwarder) stay distinguishable.
func NewBreaker(cfg BreakerConfig, reg *telemetry.Registry, name string) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	if reg != nil {
		l := telemetry.L("breaker", name)
		const help = "Circuit-breaker state transitions, by destination state."
		b.toOpen = reg.Counter("ldp_breaker_transitions_total", help, l, telemetry.L("to", "open"))
		b.toHalfOpen = reg.Counter("ldp_breaker_transitions_total", help, l, telemetry.L("to", "half_open"))
		b.toClosed = reg.Counter("ldp_breaker_transitions_total", help, l, telemetry.L("to", "closed"))
		reg.GaugeFunc("ldp_breaker_state", "Circuit-breaker state (0=closed, 1=open, 2=half-open).", func() float64 {
			return float64(b.State())
		}, l)
	}
	return b
}

// State returns the breaker's current state. An open breaker whose probe
// deadline has passed still reports open — the transition to half-open
// happens when Allow admits the probe.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. probe is true when the call
// is the half-open trial: the caller should keep it as cheap as possible
// and must settle it with Success or Failure (further Allow calls fail
// fast until then, so concurrent callers cannot pile onto a struggling
// root).
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.cfg.now().Before(b.probeAt) {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.toHalfOpen.Inc()
		return true, true
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// Success records a successful call, closing the breaker from any state
// and resetting the failure and trip counts.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.toClosed.Inc()
	}
	b.failures, b.trips = 0, 0
}

// Failure records a failed call. Closed, it counts toward Threshold;
// half-open, the probe failed and the breaker re-opens with a longer
// cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	}
}

// openLocked trips the breaker and arms the jittered probe deadline:
// uniform in [d/2, d] where d = min(MaxCooldown, Cooldown<<(trips-1)).
func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.failures = 0
	b.trips++
	d := b.cfg.Cooldown
	for i := 1; i < b.trips; i++ {
		d *= 2
		if d >= b.cfg.MaxCooldown {
			d = b.cfg.MaxCooldown
			break
		}
	}
	d = d/2 + time.Duration(b.cfg.jitter()*float64(d/2))
	b.probeAt = b.cfg.now().Add(d)
	b.toOpen.Inc()
}
