// Package cluster is the multi-node fan-in tier of the aggregation
// pipeline: it lifts the in-process additivity of pipeline.AggState onto
// the wire so a fleet of edge collectors can periodically fold into a
// root aggregator.
//
// The package defines three pieces:
//
//   - A versioned, CRC-framed shard-snapshot wire format (Snapshot,
//     AppendSnapshot, DecodeSnapshotInto): a columnar dump of a
//     pipeline's support counts, reporter counts, numeric sums, range
//     accumulators, and (for inspection only) trainer state, headed by
//     the exporting pipeline's config fingerprint plus an (edge, seq,
//     boot) delivery header. Mismatched topologies are rejected at the
//     boundary by the fingerprint; retried deliveries are deduplicated
//     by the per-edge monotone sequence number.
//
//   - RetryPolicy, a bounded exponential-backoff-with-jitter helper
//     shared by the edge forwarder and the transport clients.
//
//   - Forwarder, the edge side of the tier: it snapshots the local
//     pipeline on an interval, ships the delta since the last
//     acknowledged push, and resets cleanly when the root restarts (see
//     forwarder.go for the exactness protocol).
//
// Estimates stay exact under fan-in because every aggregate the wire
// format carries is additive: the root's state after merging N edge
// deltas is elementwise equal to the state of a single pipeline that
// ingested every underlying report.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
)

// Wire format constants. The envelope matches the report wire format
// (magic(4) version(1) payloadLen(u32) payload crc32(u32)) with its own
// magic, so a snapshot accidentally posted to /v1/report is rejected by
// magic, not misparsed.
const (
	snapMagic   = "LDPS"
	snapVersion = 1

	// MaxSnapshotSize bounds one snapshot frame. State size scales with
	// schema width and estimator geometry, not report volume, so even
	// generous configurations stay far below this.
	MaxSnapshotSize = 64 << 20

	// MaxEdgeIDLen bounds the edge identifier carried in the header.
	MaxEdgeIDLen = 128
	// maxBootLen bounds the root boot ID echoed in the header.
	maxBootLen = 64

	maxDim    = 1 << 16
	maxDomain = 1 << 24
	maxLists  = 1 << 20
)

// Errors returned by the snapshot decoder.
var (
	ErrBadMagic    = errors.New("cluster: bad snapshot magic")
	ErrBadVersion  = errors.New("cluster: unsupported snapshot version")
	ErrBadChecksum = errors.New("cluster: snapshot checksum mismatch")
	ErrTruncated   = errors.New("cluster: truncated snapshot")
)

// Snapshot is one shipment of aggregate state: the delta (or cumulative
// state) an edge pushes to the root, or the per-edge applied state a root
// returns for resynchronization.
type Snapshot struct {
	// Fingerprint is pipeline.Fingerprint() of the exporting pipeline;
	// receivers reject snapshots whose fingerprint does not match their
	// own configuration.
	Fingerprint uint64
	// Edge identifies the pushing edge node; (Edge, Seq) deduplicates
	// retried deliveries.
	Edge string
	// Seq is the edge's monotone push sequence number.
	Seq uint64
	// Boot is the root boot ID this delta is based on: the edge learned
	// it (and its acked baseline) from the root, and the root rejects
	// pushes carrying a stale or missing boot so a delta computed against
	// a dead root's state can never double-fold.
	Boot string
	// State is the columnar aggregate payload.
	State *pipeline.AggState
}

// Flag bits of the payload's section mask.
const (
	flagFreq = 1 << iota
	flagJoint
	flagRange
	flagTrainer
)

// EncodeSnapshot serializes a snapshot into a self-contained frame.
func EncodeSnapshot(s *Snapshot) ([]byte, error) { return AppendSnapshot(nil, s) }

// AppendSnapshot appends the frame encoding of s to dst and returns the
// extended slice. Reusing dst across calls makes the steady-state encode
// allocation-free.
func AppendSnapshot(dst []byte, s *Snapshot) ([]byte, error) {
	st := s.State
	if st == nil {
		return nil, fmt.Errorf("cluster: snapshot without state")
	}
	if len(s.Edge) == 0 || len(s.Edge) > MaxEdgeIDLen {
		return nil, fmt.Errorf("cluster: edge ID length %d outside [1,%d]", len(s.Edge), MaxEdgeIDLen)
	}
	if len(s.Boot) > maxBootLen {
		return nil, fmt.Errorf("cluster: boot ID longer than %d bytes", maxBootLen)
	}
	if len(st.MeanSum) != len(st.JointSum) {
		return nil, fmt.Errorf("cluster: malformed state (mean/joint dimension mismatch)")
	}
	if len(st.MeanSum) > maxDim {
		return nil, fmt.Errorf("cluster: state dimension %d exceeds limit", len(st.MeanSum))
	}

	base := len(dst)
	dst = append(dst, snapMagic...)
	dst = append(dst, snapVersion)
	dst = append(dst, 0, 0, 0, 0) // payload length backfilled below
	payloadStart := len(dst)

	dst = binary.LittleEndian.AppendUint64(dst, s.Fingerprint)
	dst = binary.LittleEndian.AppendUint64(dst, s.Seq)
	dst = append(dst, byte(len(s.Edge)))
	dst = append(dst, s.Edge...)
	dst = append(dst, byte(len(s.Boot)))
	dst = append(dst, s.Boot...)

	var flags byte
	if st.FreqCounts != nil {
		flags |= flagFreq
	}
	if st.JointCounts != nil {
		flags |= flagJoint
	}
	if st.Range != nil {
		flags |= flagRange
	}
	if st.Trainer != nil {
		flags |= flagTrainer
	}
	dst = append(dst, flags)

	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.NMean))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.NFreq))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.NJoint))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.NRange))

	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.MeanSum)))
	dst = appendFloats(dst, st.MeanSum)
	dst = appendFloats(dst, st.JointSum)

	var err error
	if st.FreqCounts != nil {
		if dst, err = appendCountColumns(dst, len(st.MeanSum), st.FreqCounts, st.FreqN); err != nil {
			return nil, err
		}
	}
	if st.JointCounts != nil {
		if dst, err = appendCountColumns(dst, len(st.MeanSum), st.JointCounts, st.JointN); err != nil {
			return nil, err
		}
	}
	if st.Range != nil {
		if dst, err = appendRangeState(dst, st.Range); err != nil {
			return nil, err
		}
	}
	if st.Trainer != nil {
		tr := st.Trainer
		if len(tr.Beta) > maxDomain {
			return nil, fmt.Errorf("cluster: trainer model dimension %d exceeds limit", len(tr.Beta))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(tr.Round)))
		done := byte(0)
		if tr.Done {
			done = 1
		}
		dst = append(dst, done)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(tr.Accepted))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(tr.Stale))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(tr.Beta)))
		dst = appendFloats(dst, tr.Beta)
	}

	payload := dst[payloadStart:]
	if len(payload) > MaxSnapshotSize {
		return nil, fmt.Errorf("cluster: snapshot of %d bytes exceeds limit %d", len(payload), MaxSnapshotSize)
	}
	binary.LittleEndian.PutUint32(dst[base+5:base+9], uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return dst, nil
}

func appendFloats(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func appendCountColumns(dst []byte, d int, counts [][]float64, ns []int64) ([]byte, error) {
	if len(counts) != d || len(ns) != d {
		return nil, fmt.Errorf("cluster: malformed state (count columns cover %d attributes, want %d)", len(counts), d)
	}
	for j := 0; j < d; j++ {
		if len(counts[j]) > maxDomain {
			return nil, fmt.Errorf("cluster: count domain %d exceeds limit", len(counts[j]))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(counts[j])))
		if counts[j] != nil {
			dst = appendFloats(dst, counts[j])
			dst = binary.LittleEndian.AppendUint64(dst, uint64(ns[j]))
		}
	}
	return dst, nil
}

func appendRangeState(dst []byte, st *rangequery.AccState) ([]byte, error) {
	if len(st.Levels) > maxLists || len(st.Grids) > maxLists {
		return nil, fmt.Errorf("cluster: range state with %d levels / %d grids exceeds limit", len(st.Levels), len(st.Grids))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.N))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.Levels)))
	for i := range st.Levels {
		var err error
		if dst, err = appendCountState(dst, &st.Levels[i]); err != nil {
			return nil, err
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.Grids)))
	for i := range st.Grids {
		var err error
		if dst, err = appendCountState(dst, &st.Grids[i]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func appendCountState(dst []byte, c *rangequery.CountState) ([]byte, error) {
	if len(c.Counts) > maxDomain {
		return nil, fmt.Errorf("cluster: count domain %d exceeds limit", len(c.Counts))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Counts)))
	dst = appendFloats(dst, c.Counts)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.N))
	return dst, nil
}

// snapReader is a bounds-checked cursor over the snapshot payload. Its
// error values are preallocated so the decode hot path allocates nothing.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) remaining() int { return len(r.b) - r.off }

func (r *snapReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *snapReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *snapReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// count reads a non-negative int64 counter.
func (r *snapReader) count() (int64, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64 {
		return 0, fmt.Errorf("cluster: counter overflows int64")
	}
	return int64(v), nil
}

// str reads a length-prefixed byte string, reusing prev when the content
// is unchanged so a steady-state decode allocates nothing.
func (r *snapReader) str(maxLen int, prev string) (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen || r.remaining() < int(n) {
		return "", ErrTruncated
	}
	raw := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	if string(raw) == prev { // comparison does not allocate
		return prev, nil
	}
	return string(raw), nil
}

// floats reads n float64s into a slice recycled from prev.
func (r *snapReader) floats(n int, prev []float64) ([]float64, error) {
	if n > maxDomain {
		return nil, fmt.Errorf("cluster: float vector of %d entries exceeds limit", n)
	}
	if r.remaining() < 8*n {
		return nil, ErrTruncated
	}
	out := prev
	if cap(out) >= n {
		out = out[:n]
	} else {
		out = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out, nil
}

// DecodeSnapshot decodes a snapshot frame into a fresh Snapshot.
func DecodeSnapshot(frame []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := DecodeSnapshotInto(frame, s); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSnapshotInto decodes a snapshot frame, recycling s's existing
// buffers when shapes match (the steady state for a root decoding a
// fixed fleet's pushes), so repeated decodes allocate nothing. The decode
// validates structure — envelope, checksum, bounds, counter signs — but
// not semantics; receivers validate the state against their own pipeline
// configuration via Pipeline.MergeState.
func DecodeSnapshotInto(frame []byte, s *Snapshot) error {
	if len(frame) > MaxSnapshotSize+13 {
		return fmt.Errorf("cluster: snapshot frame of %d bytes exceeds limit", len(frame))
	}
	if len(frame) < 13 {
		return ErrTruncated
	}
	if string(frame[:4]) != snapMagic {
		return ErrBadMagic
	}
	if frame[4] != snapVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, frame[4])
	}
	plen := binary.LittleEndian.Uint32(frame[5:9])
	if int64(plen) != int64(len(frame))-13 {
		return ErrTruncated
	}
	payload := frame[9 : 9+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[9+plen:]) {
		return ErrBadChecksum
	}

	r := &snapReader{b: payload}
	var err error
	if s.Fingerprint, err = r.u64(); err != nil {
		return err
	}
	if s.Seq, err = r.u64(); err != nil {
		return err
	}
	if s.Edge, err = r.str(MaxEdgeIDLen, s.Edge); err != nil {
		return err
	}
	if len(s.Edge) == 0 {
		return fmt.Errorf("cluster: snapshot without an edge ID")
	}
	if s.Boot, err = r.str(maxBootLen, s.Boot); err != nil {
		return err
	}
	flags, err := r.u8()
	if err != nil {
		return err
	}

	if s.State == nil {
		s.State = &pipeline.AggState{}
	}
	st := s.State
	if st.NMean, err = r.count(); err != nil {
		return err
	}
	if st.NFreq, err = r.count(); err != nil {
		return err
	}
	if st.NJoint, err = r.count(); err != nil {
		return err
	}
	if st.NRange, err = r.count(); err != nil {
		return err
	}
	d32, err := r.u32()
	if err != nil {
		return err
	}
	if d32 > maxDim {
		return fmt.Errorf("cluster: snapshot dimension %d exceeds limit", d32)
	}
	d := int(d32)
	if st.MeanSum, err = r.floats(d, st.MeanSum); err != nil {
		return err
	}
	if st.JointSum, err = r.floats(d, st.JointSum); err != nil {
		return err
	}

	if flags&flagFreq != 0 {
		if st.FreqCounts, st.FreqN, err = r.countColumns(d, st.FreqCounts, st.FreqN); err != nil {
			return err
		}
	} else {
		st.FreqCounts, st.FreqN = nil, nil
	}
	if flags&flagJoint != 0 {
		if st.JointCounts, st.JointN, err = r.countColumns(d, st.JointCounts, st.JointN); err != nil {
			return err
		}
	} else {
		st.JointCounts, st.JointN = nil, nil
	}

	if flags&flagRange != 0 {
		if st.Range == nil {
			st.Range = &rangequery.AccState{}
		}
		if err = r.rangeState(st.Range); err != nil {
			return err
		}
	} else {
		st.Range = nil
	}

	if flags&flagTrainer != 0 {
		if st.Trainer == nil {
			st.Trainer = &pipeline.TrainerState{}
		}
		tr := st.Trainer
		round, err := r.u32()
		if err != nil {
			return err
		}
		tr.Round = int(int32(round))
		done, err := r.u8()
		if err != nil {
			return err
		}
		tr.Done = done != 0
		if tr.Accepted, err = r.count(); err != nil {
			return err
		}
		if tr.Stale, err = r.count(); err != nil {
			return err
		}
		blen, err := r.u32()
		if err != nil {
			return err
		}
		if tr.Beta, err = r.floats(int(blen), tr.Beta); err != nil {
			return err
		}
	} else {
		st.Trainer = nil
	}

	if r.remaining() != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after snapshot payload", r.remaining())
	}
	return nil
}

func (r *snapReader) countColumns(d int, prevCounts [][]float64, prevNs []int64) ([][]float64, []int64, error) {
	counts := prevCounts
	if cap(counts) >= d {
		counts = counts[:d]
	} else {
		counts = make([][]float64, d)
	}
	ns := prevNs
	if cap(ns) >= d {
		ns = ns[:d]
	} else {
		ns = make([]int64, d)
	}
	for j := 0; j < d; j++ {
		card, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		if card == 0 {
			counts[j], ns[j] = nil, 0
			continue
		}
		if card > maxDomain {
			return nil, nil, fmt.Errorf("cluster: count domain %d exceeds limit", card)
		}
		if counts[j], err = r.floats(int(card), counts[j]); err != nil {
			return nil, nil, err
		}
		if ns[j], err = r.count(); err != nil {
			return nil, nil, err
		}
	}
	return counts, ns, nil
}

func (r *snapReader) rangeState(st *rangequery.AccState) error {
	var err error
	if st.N, err = r.count(); err != nil {
		return err
	}
	if st.Levels, err = r.countStates(st.Levels); err != nil {
		return err
	}
	if st.Grids, err = r.countStates(st.Grids); err != nil {
		return err
	}
	return nil
}

func (r *snapReader) countStates(prev []rangequery.CountState) ([]rangequery.CountState, error) {
	n32, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n32 > maxLists {
		return nil, fmt.Errorf("cluster: %d count lists exceed limit", n32)
	}
	n := int(n32)
	out := prev
	if cap(out) >= n {
		out = out[:n]
	} else {
		out = make([]rangequery.CountState, n)
	}
	for i := 0; i < n; i++ {
		domain, err := r.u32()
		if err != nil {
			return nil, err
		}
		if domain > maxDomain {
			return nil, fmt.Errorf("cluster: count domain %d exceeds limit", domain)
		}
		if out[i].Counts, err = r.floats(int(domain), out[i].Counts); err != nil {
			return nil, err
		}
		if out[i].N, err = r.count(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
