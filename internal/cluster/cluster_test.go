package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ldp/internal/core"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func clusterSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
		schema.Attribute{Name: "gender", Kind: schema.Categorical, Cardinality: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func clusterPipeline(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(clusterSchema(t), 4,
		pipeline.WithRange(rangequery.Config{Buckets: 32, GridCells: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ingest feeds n reports seeded from stream into each pipeline, with
// numeric payloads quantized onto a dyadic grid so distributed sums are
// bit-exact under any regrouping.
func ingest(t testing.TB, stream uint64, n int, ps ...*pipeline.Pipeline) {
	t.Helper()
	s := ps[0].Schema()
	for i := 0; i < n; i++ {
		r := rng.NewStream(stream, uint64(i))
		tup := schema.NewTuple(s)
		tup.Num[0] = math.Tanh(0.4 + 0.3*r.NormFloat64())
		tup.Num[1] = math.Tanh(-0.2 + 0.5*r.NormFloat64())
		if r.Float64() < 0.7 {
			tup.Cat[2] = 1
		}
		rep, err := ps[0].Randomize(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		for e := range rep.Entries {
			if rep.Entries[e].Kind == core.EntryNumeric {
				rep.Entries[e].Value = math.Round(rep.Entries[e].Value*1024) / 1024
			}
		}
		for _, p := range ps {
			if err := p.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := clusterPipeline(t)
	ingest(t, 7, 500, src)

	snap := &Snapshot{
		Fingerprint: src.Fingerprint(),
		Edge:        "edge-a",
		Seq:         42,
		Boot:        "boot-1",
		State:       src.StateSnapshot(),
	}
	frame, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != snap.Fingerprint || got.Edge != "edge-a" || got.Seq != 42 || got.Boot != "boot-1" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.State.Total() != 500 {
		t.Fatalf("decoded state total %d, want 500", got.State.Total())
	}

	// Re-encoding the decoded snapshot must reproduce the frame exactly.
	frame2, err := EncodeSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(frame) != string(frame2) {
		t.Fatal("re-encoded frame differs from original")
	}

	// The decoded state folds into a fresh pipeline bit-exactly.
	ref := clusterPipeline(t)
	ingest(t, 7, 500, ref)
	dst := clusterPipeline(t)
	if err := dst.MergeState(got.State); err != nil {
		t.Fatal(err)
	}
	dm, rm := dst.Snapshot().Means(), ref.Snapshot().Means()
	for k, v := range rm {
		if dm[k] != v {
			t.Errorf("Means[%s]: got %v, want %v", k, dm[k], v)
		}
	}
}

func TestSnapshotTrainerSection(t *testing.T) {
	st := &pipeline.AggState{
		MeanSum:  []float64{1, 2},
		JointSum: []float64{0, 0},
		Trainer:  &pipeline.TrainerState{Round: 3, Done: true, Accepted: 10, Stale: 2, Beta: []float64{0.5, -0.25}},
	}
	frame, err := EncodeSnapshot(&Snapshot{Edge: "e", State: st})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(frame)
	if err != nil {
		t.Fatal(err)
	}
	tr := got.State.Trainer
	if tr == nil || tr.Round != 3 || !tr.Done || tr.Accepted != 10 || tr.Stale != 2 || tr.Beta[1] != -0.25 {
		t.Fatalf("trainer state mangled: %+v", tr)
	}
}

func TestSnapshotDecodeRejects(t *testing.T) {
	src := clusterPipeline(t)
	ingest(t, 9, 50, src)
	frame, err := EncodeSnapshot(&Snapshot{
		Fingerprint: src.Fingerprint(), Edge: "e", Seq: 1, Boot: "b", State: src.StateSnapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) error {
		b := append([]byte(nil), frame...)
		_, err := DecodeSnapshot(f(b))
		return err
	}

	if err := mut(func(b []byte) []byte { b[0] = 'X'; return b }); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if err := mut(func(b []byte) []byte { b[4] = 99; return b }); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	if err := mut(func(b []byte) []byte { b[20] ^= 1; return b }); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("flipped payload bit: %v", err)
	}
	if err := mut(func(b []byte) []byte { return b[:len(b)-5] }); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if err := mut(func(b []byte) []byte { return append(b, 0) }); !errors.Is(err, ErrTruncated) {
		t.Errorf("trailing garbage: %v", err)
	}
	if err := mut(func(b []byte) []byte { return b[:6] }); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame: %v", err)
	}

	if _, err := EncodeSnapshot(&Snapshot{State: src.StateSnapshot()}); err == nil {
		t.Error("encode accepted an empty edge ID")
	}
	if _, err := EncodeSnapshot(&Snapshot{Edge: "e"}); err == nil {
		t.Error("encode accepted a nil state")
	}
	if _, err := EncodeSnapshot(&Snapshot{Edge: strings.Repeat("x", MaxEdgeIDLen+1), State: src.StateSnapshot()}); err == nil {
		t.Error("encode accepted an oversized edge ID")
	}
}

func TestDecodeSnapshotIntoReuses(t *testing.T) {
	src := clusterPipeline(t)
	ingest(t, 13, 100, src)
	frame, err := EncodeSnapshot(&Snapshot{
		Fingerprint: src.Fingerprint(), Edge: "edge-b", Seq: 5, Boot: "boot", State: src.StateSnapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := DecodeSnapshotInto(frame, &s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeSnapshotInto(frame, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeSnapshotInto allocates %.1f/op, want 0", allocs)
	}
	if s.State.Total() != 100 || s.Edge != "edge-b" {
		t.Fatalf("reused decode corrupted state: %+v", s)
	}
}

func TestRetryPolicy(t *testing.T) {
	fast := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 4 * time.Microsecond}

	calls := 0
	err := fast.Do(context.Background(), func(context.Context) (bool, error) {
		calls++
		if calls < 3 {
			return true, fmt.Errorf("transient")
		}
		return false, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("recovering attempt: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = fast.Do(context.Background(), func(context.Context) (bool, error) {
		calls++
		return false, fmt.Errorf("permanent")
	})
	if err == nil || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = fast.Do(context.Background(), func(context.Context) (bool, error) {
		calls++
		return true, fmt.Errorf("always failing")
	})
	if err == nil || calls != 3 {
		t.Fatalf("exhaustion: err=%v calls=%d", err, calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour}
	err = slow.Do(ctx, func(context.Context) (bool, error) { return true, fmt.Errorf("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backoff: %v", err)
	}

	if got := fast.backoff(10); got != fast.MaxDelay {
		t.Fatalf("backoff cap: %v", got)
	}
}

// fakeRoot is an in-test implementation of the root side of the merge
// protocol, used to exercise the forwarder against every response class.
type fakeRoot struct {
	mu    sync.Mutex
	boot  string
	fp    uint64
	p     *pipeline.Pipeline
	edges map[string]*fakeEdgeRec
	// fail503 makes the next n POSTs return 503 before recovering.
	fail503 int
	posts   int
}

type fakeEdgeRec struct {
	seq uint64
	cum *pipeline.AggState
}

func newFakeRoot(t testing.TB, boot string) *fakeRoot {
	p := clusterPipeline(t)
	return &fakeRoot{boot: boot, fp: p.Fingerprint(), p: p, edges: map[string]*fakeEdgeRec{}}
}

func (fr *fakeRoot) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	w.Header().Set(BootHeader, fr.boot)
	switch r.Method {
	case http.MethodGet:
		rec, ok := fr.edges[r.URL.Query().Get("edge")]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		frame, err := EncodeSnapshot(&Snapshot{
			Fingerprint: fr.fp, Edge: r.URL.Query().Get("edge"),
			Seq: rec.seq, Boot: fr.boot, State: rec.cum,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(frame)
	case http.MethodPost:
		fr.posts++
		if fr.fail503 > 0 {
			fr.fail503--
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		body := make([]byte, 0, 1<<16)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		snap, err := DecodeSnapshot(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if snap.Fingerprint != fr.fp {
			http.Error(w, "fingerprint mismatch", http.StatusConflict)
			return
		}
		if snap.Boot != fr.boot {
			http.Error(w, "boot mismatch", http.StatusPreconditionFailed)
			return
		}
		rec := fr.edges[snap.Edge]
		if rec == nil {
			rec = &fakeEdgeRec{}
			fr.edges[snap.Edge] = rec
		}
		applied := false
		if snap.Seq > rec.seq {
			if err := fr.p.MergeState(snap.State); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if rec.cum == nil {
				rec.cum = snap.State.Clone()
			} else if err := rec.cum.Add(snap.State); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			rec.seq = snap.Seq
			applied = true
		}
		json.NewEncoder(w).Encode(MergeAck{Edge: snap.Edge, Seq: snap.Seq, Applied: applied, Boot: fr.boot})
	}
}

func newTestForwarder(t testing.TB, p *pipeline.Pipeline, url, edge string) *Forwarder {
	t.Helper()
	f, err := NewForwarder(p, ForwarderConfig{
		RootURL: url,
		EdgeID:  edge,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestForwarderPushDeltaAndRetry(t *testing.T) {
	fr := newFakeRoot(t, "boot-1")
	srv := httptest.NewServer(fr)
	defer srv.Close()

	edge := clusterPipeline(t)
	ref := clusterPipeline(t)
	fw := newTestForwarder(t, edge, srv.URL, "edge-a")
	ctx := context.Background()

	// First push resyncs (unknown edge → 404 + boot) then ships everything.
	ingest(t, 51, 300, edge, ref)
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if seq, n := fw.Acked(); seq != 1 || n != 300 {
		t.Fatalf("after first push: seq=%d acked=%d", seq, n)
	}

	// Nothing new: the cycle is a no-op, no sequence burned.
	posts := fr.posts
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if fr.posts != posts {
		t.Fatal("empty cycle still POSTed")
	}

	// Next delta survives transient 503s via retry.
	ingest(t, 52, 200, edge, ref)
	fr.mu.Lock()
	fr.fail503 = 2
	fr.mu.Unlock()
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if seq, n := fw.Acked(); seq != 2 || n != 500 {
		t.Fatalf("after retried push: seq=%d acked=%d", seq, n)
	}

	// Root state is bit-identical to a pipeline that saw every report.
	gm, wm := fr.p.Snapshot().Means(), ref.Snapshot().Means()
	for k, v := range wm {
		if gm[k] != v {
			t.Errorf("Means[%s]: got %v, want %v", k, gm[k], v)
		}
	}
	if fr.p.Watermark() != 500 {
		t.Fatalf("root watermark %d, want 500", fr.p.Watermark())
	}
}

func TestForwarderEdgeRestartResync(t *testing.T) {
	fr := newFakeRoot(t, "boot-1")
	srv := httptest.NewServer(fr)
	defer srv.Close()

	edge := clusterPipeline(t)
	fw := newTestForwarder(t, edge, srv.URL, "edge-a")
	ctx := context.Background()

	ingest(t, 61, 250, edge)
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}

	// Simulate an edge restart: a fresh forwarder over a recovered
	// pipeline holding the same 250 reports plus 100 new ones. The resync
	// restores the acked baseline so only the 100 are shipped.
	recovered := clusterPipeline(t)
	ingest(t, 61, 250, recovered)
	ingest(t, 62, 100, recovered)
	fw2 := newTestForwarder(t, recovered, srv.URL, "edge-a")
	if err := fw2.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if seq, n := fw2.Acked(); seq != 2 || n != 350 {
		t.Fatalf("after resynced push: seq=%d acked=%d", seq, n)
	}
	if fr.p.Watermark() != 350 {
		t.Fatalf("root watermark %d, want 350 (exactly-once)", fr.p.Watermark())
	}
}

func TestForwarderRootRestart(t *testing.T) {
	fr := newFakeRoot(t, "boot-1")
	srv := httptest.NewServer(fr)
	defer srv.Close()

	edge := clusterPipeline(t)
	fw := newTestForwarder(t, edge, srv.URL, "edge-a")
	ctx := context.Background()

	ingest(t, 71, 150, edge)
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}

	// Root reboot: new boot ID, all per-edge state gone.
	fr.mu.Lock()
	fr.boot = "boot-2"
	fr.p = clusterPipeline(t)
	fr.edges = map[string]*fakeEdgeRec{}
	fr.mu.Unlock()

	ingest(t, 72, 50, edge)
	// First push after the reboot hits 412 and drops its pending frame.
	if err := fw.Push(ctx); err == nil {
		t.Fatal("push against rebooted root succeeded")
	}
	// Next cycle resyncs (404 under boot-2) and re-ships the full state.
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if fr.p.Watermark() != 200 {
		t.Fatalf("rebooted root watermark %d, want 200", fr.p.Watermark())
	}
	if seq, n := fw.Acked(); seq != 1 || n != 200 {
		t.Fatalf("after reboot recovery: seq=%d acked=%d", seq, n)
	}
}

func TestForwarderFingerprintMismatch(t *testing.T) {
	fr := newFakeRoot(t, "boot-1")
	srv := httptest.NewServer(fr)
	defer srv.Close()

	s := clusterSchema(t)
	p, err := pipeline.New(s, 2) // different eps, no range: different fingerprint
	if err != nil {
		t.Fatal(err)
	}
	fw := newTestForwarder(t, p, srv.URL, "edge-x")
	ingest(t, 81, 10, p)
	err = fw.Push(context.Background())
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("mismatched fingerprint not rejected: %v", err)
	}
}

func TestNewForwarderRejects(t *testing.T) {
	p := clusterPipeline(t)
	if _, err := NewForwarder(nil, ForwarderConfig{RootURL: "http://x", EdgeID: "e"}); err == nil {
		t.Error("nil pipeline accepted")
	}
	if _, err := NewForwarder(p, ForwarderConfig{EdgeID: "e"}); err == nil {
		t.Error("missing root URL accepted")
	}
	if _, err := NewForwarder(p, ForwarderConfig{RootURL: "http://x"}); err == nil {
		t.Error("missing edge ID accepted")
	}
	g, err := pipeline.New(clusterSchema(t), 4,
		pipeline.WithGradient(pipeline.GradientConfig{Dim: 3, Rounds: 2, GroupSize: 4, Eta: 1, Lambda: 1e-4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewForwarder(g, ForwarderConfig{RootURL: "http://x", EdgeID: "e"}); err == nil {
		t.Error("gradient pipeline accepted")
	}
}
