package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ldp/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasic(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if !almostEqual(r.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", r.Variance())
	}
	if !almostEqual(r.SampleVariance(), 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", r.SampleVariance(), 32.0/7)
	}
	if !almostEqual(r.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 {
		t.Error("single observation: mean 3, variance 0")
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	a.AddN(2, 3)
	for i := 0; i < 3; i++ {
		b.Add(2)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Error("AddN(x,3) should equal three Add(x) calls")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	r := rng.New(20)
	f := func(seed uint64) bool {
		local := rng.New(seed)
		var whole, left, right Running
		for i := 0; i < 500; i++ {
			x := local.NormFloat64()*3 + 1
			whole.Add(x)
			if i%2 == 0 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-9)
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a.Mean()
	a.Merge(&b) // merging empty is a no-op
	if a.Mean() != before || a.N() != 2 {
		t.Error("merging an empty accumulator changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != before {
		t.Error("merging into empty accumulator should copy")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almostEqual(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEqual(Variance(xs), 1.25, 1e-12) {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slice should give 0")
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, (0.0+1+4)/3, 1e-12) {
		t.Errorf("MSE = %v", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if got, err := MSE(nil, nil); err != nil || got != 0 {
		t.Error("empty MSE should be 0, nil")
	}
}

func TestMaxAbsErr(t *testing.T) {
	got, err := MaxAbsErr([]float64{1, -2, 3}, []float64{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("MaxAbsErr = %v, want 4", got)
	}
	if _, err := MaxAbsErr([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestNormalCICoverage(t *testing.T) {
	// 95% CI should cover the true mean in roughly 95% of repetitions.
	r := rng.New(21)
	const reps = 400
	covered := 0
	for rep := 0; rep < reps; rep++ {
		var acc Running
		for i := 0; i < 200; i++ {
			acc.Add(r.NormFloat64() + 7)
		}
		mean, hw := NormalCI(&acc, 1.96)
		if math.Abs(mean-7) <= hw {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("coverage = %v, want ~0.95", rate)
	}
}

func TestRunningLargeShiftStability(t *testing.T) {
	// Welford must stay accurate with a large offset where naive sum of
	// squares loses precision.
	var r Running
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		r.Add(x)
	}
	if !almostEqual(r.Variance(), 2.0/3, 1e-6) {
		t.Errorf("Variance = %v, want %v", r.Variance(), 2.0/3)
	}
}
