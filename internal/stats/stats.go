// Package stats provides the estimation-quality statistics used by the
// experiment harness: numerically stable running moments (Welford), mean
// squared error, quantiles, and normal-approximation confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned by MSE and MaxAbsErr when the two slices
// have different lengths.
var ErrLengthMismatch = errors.New("stats: slice length mismatch")

// Running accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN folds x in as if it had been observed weight times (weight >= 1).
func (r *Running) AddN(x float64, weight int64) {
	for i := int64(0); i < weight; i++ {
		r.Add(x)
	}
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean, or 0 before any observation.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (dividing by n), or 0 when fewer
// than two observations have been seen.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1), or
// 0 when fewer than two observations have been seen.
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean (sample stddev / sqrt(n)).
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.SampleVariance() / float64(r.n))
}

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.mean += delta * float64(o.n) / float64(n)
	r.n = n
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// elements).
func Variance(xs []float64) float64 {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Variance()
}

// MSE returns the mean squared error between estimates and truth.
func MSE(estimate, truth []float64) (float64, error) {
	if len(estimate) != len(truth) {
		return 0, ErrLengthMismatch
	}
	if len(estimate) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range estimate {
		d := estimate[i] - truth[i]
		sum += d * d
	}
	return sum / float64(len(estimate)), nil
}

// MaxAbsErr returns the maximum absolute coordinate error between the two
// vectors (the L-infinity error bounded by Lemma 5 of the paper).
func MaxAbsErr(estimate, truth []float64) (float64, error) {
	if len(estimate) != len(truth) {
		return 0, ErrLengthMismatch
	}
	max := 0.0
	for i := range estimate {
		if d := math.Abs(estimate[i] - truth[i]); d > max {
			max = d
		}
	}
	return max, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// NormalCI returns the mean and half-width of a normal-approximation
// confidence interval at the given z value (e.g. 1.96 for 95%) for the
// observations accumulated in r.
func NormalCI(r *Running, z float64) (mean, halfWidth float64) {
	return r.Mean(), z * r.StdErr()
}
