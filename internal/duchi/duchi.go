// Package duchi implements Duchi et al.'s minimax-optimal local
// differential privacy mechanisms for numeric data, which are the primary
// baselines of the paper:
//
//   - OneDim: Algorithm 1 of the paper (one-dimensional case). The output
//     is one of two points ±(e^eps+1)/(e^eps-1), chosen with a
//     value-dependent Bernoulli probability.
//   - Multi: Algorithm 3 of the paper (multidimensional case). The output
//     is a uniformly sampled corner of the hypercube {-B, B}^d from the
//     halfspace agreeing (or disagreeing) with a randomized sign vector,
//     with B = C_d (e^eps+1)/(e^eps-1) per Eq. 9-10.
//
// The corner sampling in Multi is exact for arbitrary dimensionality: the
// number of agreeing coordinates is drawn from its binomial-weighted
// distribution in log space, then positions are chosen uniformly.
package duchi

import (
	"fmt"
	"math"

	"ldp/internal/mathx"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// OneDim is Duchi et al.'s mechanism for a single numeric attribute
// (Algorithm 1). It satisfies eps-LDP and is unbiased; its noise variance is
// ((e^eps+1)/(e^eps-1))^2 - t^2 (Eq. 4), largest for inputs near zero.
type OneDim struct {
	eps   float64
	bound float64 // (e^eps+1)/(e^eps-1)
	slope float64 // (e^eps-1)/(2e^eps+2)
}

// NewOneDim constructs the one-dimensional Duchi mechanism.
func NewOneDim(eps float64) (*OneDim, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	e := math.Exp(eps)
	return &OneDim{
		eps:   eps,
		bound: (e + 1) / (e - 1),
		slope: (e - 1) / (2*e + 2),
	}, nil
}

// Name returns "duchi".
func (m *OneDim) Name() string { return "duchi" }

// Epsilon returns the privacy budget.
func (m *OneDim) Epsilon() float64 { return m.eps }

// Bound returns the magnitude (e^eps+1)/(e^eps-1) of the two output points.
func (m *OneDim) Bound() float64 { return m.bound }

// Perturb returns +Bound with probability (e^eps-1)/(2e^eps+2)*t + 1/2 and
// -Bound otherwise. Inputs outside [-1,1] are clamped.
func (m *OneDim) Perturb(t float64, r *rng.Rand) float64 {
	t = mech.Clamp1(t)
	if rng.Bernoulli(r, m.slope*t+0.5) {
		return m.bound
	}
	return -m.bound
}

// Variance returns Bound^2 - t^2 (Eq. 4 of the paper).
func (m *OneDim) Variance(t float64) float64 {
	t = mech.Clamp1(t)
	return m.bound*m.bound - t*t
}

// WorstCaseVariance returns Bound^2, attained at t = 0.
func (m *OneDim) WorstCaseVariance() float64 { return m.bound * m.bound }

var _ mech.Mechanism = (*OneDim)(nil)

// Cd returns the normalization constant C_d of Eq. 9:
//
//	C_d = 2^{d-1} / binom(d-1, (d-1)/2)                        for odd d,
//	C_d = (2^{d-1} + binom(d, d/2)/2) / binom(d-1, d/2)        for even d.
//
// It is computed in log space and is accurate for d well beyond the
// dimensionalities used in the paper (d <= 94 after one-hot encoding).
func Cd(d int) float64 {
	if d < 1 {
		return math.NaN()
	}
	ln2 := math.Ln2
	if d%2 == 1 {
		return math.Exp(float64(d-1)*ln2 - mathx.LogBinomial(d-1, (d-1)/2))
	}
	num := mathx.LogSumExp([]float64{
		float64(d-1) * ln2,
		mathx.LogBinomial(d, d/2) - ln2,
	})
	return math.Exp(num - mathx.LogBinomial(d-1, d/2))
}

// B returns the output magnitude B = C_d * (e^eps+1)/(e^eps-1) of Eq. 10.
func B(eps float64, d int) float64 {
	e := math.Exp(eps)
	return Cd(d) * (e + 1) / (e - 1)
}

// Multi is Duchi et al.'s mechanism for d-dimensional numeric tuples
// (Algorithm 3). Each output coordinate is ±B, so the per-coordinate noise
// variance is B^2 - t_j^2 (Eq. 13).
type Multi struct {
	eps   float64
	d     int
	b     float64
	pPlus float64 // e^eps / (e^eps + 1): probability of sampling from T+

	// Agreement-count distribution for uniform sampling from T+:
	// logw[i] = ln binom(d, lo+i) for agreement counts a = lo..d.
	lo   int
	logw []float64
}

// NewMulti constructs the multidimensional Duchi mechanism for dimension d.
func NewMulti(eps float64, d int) (*Multi, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("duchi: dimension must be >= 1, got %d", d)
	}
	e := math.Exp(eps)
	m := &Multi{
		eps:   eps,
		d:     d,
		b:     B(eps, d),
		pPlus: e / (e + 1),
	}
	// T+ = {z in {-B,B}^d : z . v >= 0}. Writing a for the number of
	// coordinates with z_j = B v_j, z . v = B(2a - d), so membership is
	// a >= d/2; for even d the boundary a = d/2 lies in both T+ and T-
	// (which is what gives Eq. 9 its even-case correction term).
	m.lo = (d + 1) / 2
	if d%2 == 0 {
		m.lo = d / 2
	}
	m.logw = make([]float64, d-m.lo+1)
	for a := m.lo; a <= d; a++ {
		m.logw[a-m.lo] = mathx.LogBinomial(d, a)
	}
	return m, nil
}

// Name returns "duchi-multi".
func (m *Multi) Name() string { return "duchi-multi" }

// Epsilon returns the total tuple privacy budget.
func (m *Multi) Epsilon() float64 { return m.eps }

// Dim returns the tuple dimensionality.
func (m *Multi) Dim() int { return m.d }

// Bound returns the per-coordinate output magnitude B.
func (m *Multi) Bound() float64 { return m.b }

// PerturbVector runs Algorithm 3: randomize a sign vector v coordinate-wise,
// then emit a uniform corner of T+ (with probability e^eps/(e^eps+1)) or of
// T- (otherwise). t must have length Dim().
func (m *Multi) PerturbVector(t []float64, r *rng.Rand) []float64 {
	if len(t) != m.d {
		panic(fmt.Sprintf("duchi: tuple has %d coordinates, mechanism built for %d", len(t), m.d))
	}
	// Step 1: v[j] = +1 w.p. (1 + t_j)/2.
	v := make([]float64, m.d)
	for j, x := range t {
		if rng.Bernoulli(r, 0.5+0.5*mech.Clamp1(x)) {
			v[j] = 1
		} else {
			v[j] = -1
		}
	}
	// Steps 2-7: sample uniformly from T+; a uniform sample of T- is the
	// global sign flip of a uniform sample of T+ (the flip is a bijection
	// between the two sets).
	a := m.lo + rng.WeightedIndexLog(r, m.logw)
	agree := rng.SampleWithoutReplacement(r, m.d, a)
	out := make([]float64, m.d)
	for j := range out {
		out[j] = -m.b * v[j]
	}
	for _, j := range agree {
		out[j] = m.b * v[j]
	}
	if !rng.Bernoulli(r, m.pPlus) {
		for j := range out {
			out[j] = -out[j]
		}
	}
	return out
}

// CoordinateVariance returns the per-coordinate noise variance B^2 - t^2
// (Eq. 13) for an input coordinate value t.
func (m *Multi) CoordinateVariance(t float64) float64 {
	t = mech.Clamp1(t)
	return m.b*m.b - t*t
}

// WorstCaseCoordinateVariance returns B^2, attained at t = 0.
func (m *Multi) WorstCaseCoordinateVariance() float64 { return m.b * m.b }

var _ mech.VectorPerturber = (*Multi)(nil)
