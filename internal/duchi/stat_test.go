package duchi

import (
	"testing"

	"ldp/internal/stattest"
)

// Statistical acceptance tests through the shared stattest harness: the
// Duchi mechanisms must be unbiased within 5 standard errors and match
// their closed-form variances (Eq. 4 for the 1-D case, Eq. 13 per
// coordinate for Algorithm 3) within a stated factor.

func TestOneDimStatistics(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 4} {
		m, err := NewOneDim(eps)
		if err != nil {
			t.Fatal(err)
		}
		stattest.CheckMechanism(t, m, []float64{-1, -0.5, 0, 0.5, 1}, 60_000, 0xD0C41+uint64(eps*10), 0.06)
	}
}

func TestMultiStatistics(t *testing.T) {
	input := []float64{0.6, -0.9, 0, 0.2}
	for _, eps := range []float64{1, 4} {
		m, err := NewMulti(eps, len(input))
		if err != nil {
			t.Fatal(err)
		}
		for _, coord := range []int{0, 1, 2} {
			stattest.CheckVectorPerturber(t, m, input, coord,
				m.CoordinateVariance(input[coord]), 60_000,
				0xD0C42+uint64(eps*100)+uint64(coord), 0.08)
		}
	}
}
