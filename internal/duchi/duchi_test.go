package duchi

import (
	"math"
	"testing"
	"testing/quick"

	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/stats"
)

func TestNewOneDimInvalidEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewOneDim(eps); err == nil {
			t.Errorf("NewOneDim(%v): expected error", eps)
		}
	}
}

func TestOneDimOutputsTwoPoints(t *testing.T) {
	m, err := NewOneDim(1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	want := m.Bound()
	for i := 0; i < 1000; i++ {
		got := m.Perturb(0.3, r)
		if math.Abs(got) != want {
			t.Fatalf("output %v not in {-%v, %v}", got, want, want)
		}
	}
}

func TestOneDimBoundValue(t *testing.T) {
	// Bound = (e^eps+1)/(e^eps-1).
	m, _ := NewOneDim(math.Log(3)) // e^eps = 3 => bound = 2
	if !almostEqual(m.Bound(), 2, 1e-12) {
		t.Errorf("Bound = %v, want 2", m.Bound())
	}
}

func TestOneDimUnbiased(t *testing.T) {
	r := rng.New(2)
	const n = 400000
	for _, eps := range []float64{0.5, 1, 4} {
		m, _ := NewOneDim(eps)
		for _, ti := range []float64{-1, -0.4, 0, 0.7, 1} {
			var acc stats.Running
			for i := 0; i < n; i++ {
				acc.Add(m.Perturb(ti, r))
			}
			tol := 5 * math.Sqrt(m.Variance(ti)/n)
			if math.Abs(acc.Mean()-ti) > tol {
				t.Errorf("eps=%v t=%v: mean %v, want %v +- %v", eps, ti, acc.Mean(), ti, tol)
			}
		}
	}
}

func TestOneDimEmpiricalVarianceMatchesEq4(t *testing.T) {
	r := rng.New(3)
	const n = 400000
	m, _ := NewOneDim(2)
	for _, ti := range []float64{0, 0.5, 1} {
		var acc stats.Running
		for i := 0; i < n; i++ {
			acc.Add(m.Perturb(ti, r))
		}
		want := m.Variance(ti)
		if math.Abs(acc.Variance()-want) > 0.03*m.WorstCaseVariance() {
			t.Errorf("t=%v: empirical var %v, want %v", ti, acc.Variance(), want)
		}
	}
}

func TestOneDimExactLDPRatio(t *testing.T) {
	// The two-point output distribution makes the LDP check analytic:
	// the worst-case ratio of output probabilities over input pairs is
	// exactly e^eps, attained at t=1 vs t=-1.
	for _, eps := range []float64{0.3, 1, 3} {
		m, _ := NewOneDim(eps)
		pPlus := func(t float64) float64 { return m.slope*t + 0.5 }
		worst := 0.0
		for _, a := range []float64{-1, -0.5, 0, 0.5, 1} {
			for _, b := range []float64{-1, -0.5, 0, 0.5, 1} {
				r1 := pPlus(a) / pPlus(b)
				r2 := (1 - pPlus(a)) / (1 - pPlus(b))
				worst = math.Max(worst, math.Max(r1, r2))
			}
		}
		if worst > math.Exp(eps)+1e-9 {
			t.Errorf("eps=%v: worst ratio %v exceeds e^eps=%v", eps, worst, math.Exp(eps))
		}
		if math.Abs(worst-math.Exp(eps)) > 1e-9 {
			t.Errorf("eps=%v: worst ratio %v, want exactly e^eps=%v", eps, worst, math.Exp(eps))
		}
	}
}

func TestOneDimClampsInput(t *testing.T) {
	m, _ := NewOneDim(1)
	r := rng.New(4)
	// t=5 clamps to 1: P(+bound) = slope + 0.5.
	const n = 200000
	plus := 0
	for i := 0; i < n; i++ {
		if m.Perturb(5, r) > 0 {
			plus++
		}
	}
	want := m.slope + 0.5
	got := float64(plus) / n
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
		t.Errorf("P(+) = %v, want %v (clamped input)", got, want)
	}
}

func TestCdSmallValues(t *testing.T) {
	cases := []struct {
		d    int
		want float64
	}{
		{1, 1}, {2, 3}, {3, 2}, {4, 11.0 / 3}, {5, 8.0 / 3},
	}
	for _, c := range cases {
		if got := Cd(c.d); !almostEqual(got, c.want, 1e-9*c.want) {
			t.Errorf("Cd(%d) = %v, want %v", c.d, got, c.want)
		}
	}
	if !math.IsNaN(Cd(0)) {
		t.Error("Cd(0) should be NaN")
	}
}

func TestCdGrowsLikeSqrtD(t *testing.T) {
	// By Stirling, C_d ~ sqrt(pi d / 2)/ ... grows O(sqrt(d)); make sure
	// the log-space computation stays finite and monotone-ish at large d.
	prev := 0.0
	for _, d := range []int{11, 31, 51, 71, 91, 301, 1001} {
		got := Cd(d)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Cd(%d) not finite: %v", d, got)
		}
		if got < prev {
			t.Errorf("Cd(%d) = %v < Cd at previous odd d = %v", d, got, prev)
		}
		prev = got
	}
}

func TestBMatchesOneDim(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2} {
		m, _ := NewOneDim(eps)
		if got := B(eps, 1); !almostEqual(got, m.Bound(), 1e-12) {
			t.Errorf("B(%v,1) = %v, want %v", eps, got, m.Bound())
		}
	}
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(0, 4); err == nil {
		t.Error("expected error for eps=0")
	}
	if _, err := NewMulti(1, 0); err == nil {
		t.Error("expected error for d=0")
	}
}

func TestMultiOutputsCorners(t *testing.T) {
	m, err := NewMulti(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	in := []float64{0.1, -0.9, 0.5, 0, 1}
	for i := 0; i < 500; i++ {
		out := m.PerturbVector(in, r)
		if len(out) != 5 {
			t.Fatalf("len(out) = %d", len(out))
		}
		for _, v := range out {
			if math.Abs(v) != m.Bound() {
				t.Fatalf("coordinate %v not at ±B = ±%v", v, m.Bound())
			}
		}
	}
}

func TestMultiPanicsOnWrongLength(t *testing.T) {
	m, _ := NewMulti(1, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong tuple length")
		}
	}()
	m.PerturbVector([]float64{0, 0}, rng.New(6))
}

func TestMultiUnbiasedOddD(t *testing.T) {
	testMultiUnbiased(t, 3, 2.0, []float64{0.8, -0.3, 0.1})
}

func TestMultiUnbiasedEvenD(t *testing.T) {
	testMultiUnbiased(t, 4, 1.0, []float64{0.8, -0.3, 0.1, -1})
}

func testMultiUnbiased(t *testing.T, d int, eps float64, in []float64) {
	t.Helper()
	m, err := NewMulti(eps, d)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const n = 300000
	sums := make([]float64, d)
	for i := 0; i < n; i++ {
		out := m.PerturbVector(in, r)
		for j, v := range out {
			sums[j] += v
		}
	}
	for j := range sums {
		got := sums[j] / n
		tol := 5 * math.Sqrt(m.WorstCaseCoordinateVariance()/n)
		if math.Abs(got-in[j]) > tol {
			t.Errorf("d=%d coord %d: mean %v, want %v +- %v", d, j, got, in[j], tol)
		}
	}
}

func TestMultiCoordinateVarianceMatchesEq13(t *testing.T) {
	m, _ := NewMulti(2, 4)
	r := rng.New(8)
	in := []float64{0, 0.5, -0.7, 1}
	const n = 300000
	accs := make([]stats.Running, 4)
	for i := 0; i < n; i++ {
		out := m.PerturbVector(in, r)
		for j, v := range out {
			accs[j].Add(v)
		}
	}
	for j := range accs {
		want := m.CoordinateVariance(in[j])
		got := accs[j].Variance()
		if math.Abs(got-want) > 0.03*m.WorstCaseCoordinateVariance() {
			t.Errorf("coord %d: var %v, want %v", j, got, want)
		}
	}
}

func TestMultiUnbiasedProperty(t *testing.T) {
	// Cheap property check over random small configurations: the mean of
	// many perturbations tracks the input within a loose band.
	f := func(seed uint64, dRaw uint8, tRaw int8) bool {
		d := int(dRaw%6) + 1
		in := make([]float64, d)
		in[0] = float64(tRaw) / 128
		m, err := NewMulti(1.5, d)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		const n = 60000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += m.PerturbVector(in, r)[0]
		}
		tol := 6 * math.Sqrt(m.WorstCaseCoordinateVariance()/n)
		return math.Abs(sum/n-in[0]) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestComposedWithOneDim(t *testing.T) {
	// The composition wrapper from package mech should run OneDim at eps/d
	// per coordinate and remain unbiased.
	factory := func(eps float64) (mech.Mechanism, error) { return NewOneDim(eps) }
	c, err := mech.NewComposed(factory, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Inner().Epsilon() != 0.5 {
		t.Errorf("inner epsilon = %v, want 0.5", c.Inner().Epsilon())
	}
	r := rng.New(9)
	in := []float64{0.5, -0.5, 0, 1}
	const n = 200000
	sums := make([]float64, 4)
	for i := 0; i < n; i++ {
		for j, v := range c.PerturbVector(in, r) {
			sums[j] += v
		}
	}
	for j := range sums {
		got := sums[j] / n
		tol := 5 * math.Sqrt(c.CoordinateVariance(in[j])/n)
		if math.Abs(got-in[j]) > tol {
			t.Errorf("coord %d: mean %v, want %v +- %v", j, got, in[j], tol)
		}
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
