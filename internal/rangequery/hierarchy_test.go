package rangequery

import (
	"math"
	"math/bits"
	"testing"

	"ldp/internal/rng"
)

// TestDecomposeExhaustive checks, for every bucket range of several
// power-of-two domains up to B=256, that the canonical cover (a) exactly
// partitions the range, (b) uses at most 2*log2(B) nodes, and (c) never
// emits the root.
func TestDecomposeExhaustive(t *testing.T) {
	for _, b := range []int{2, 4, 16, 64, 256} {
		logB := bits.Len(uint(b)) - 1
		for lo := 0; lo < b; lo++ {
			for hi := lo; hi < b; hi++ {
				nodes, err := Decompose(b, lo, hi)
				if err != nil {
					t.Fatalf("B=%d Decompose(%d,%d): %v", b, lo, hi, err)
				}
				if len(nodes) > 2*logB {
					t.Fatalf("B=%d [%d,%d]: %d nodes > 2*log2(B) = %d",
						b, lo, hi, len(nodes), 2*logB)
				}
				covered := make([]bool, b)
				for _, n := range nodes {
					if n.Depth < 1 || n.Depth > logB {
						t.Fatalf("B=%d [%d,%d]: node depth %d outside [1,%d]", b, lo, hi, n.Depth, logB)
					}
					size := b >> n.Depth
					for i := n.Index * size; i < (n.Index+1)*size; i++ {
						if i < 0 || i >= b || covered[i] {
							t.Fatalf("B=%d [%d,%d]: node (%d,%d) covers bucket %d twice or out of range",
								b, lo, hi, n.Depth, n.Index, i)
						}
						covered[i] = true
					}
				}
				for i := 0; i < b; i++ {
					if covered[i] != (i >= lo && i <= hi) {
						t.Fatalf("B=%d [%d,%d]: bucket %d covered=%v", b, lo, hi, i, covered[i])
					}
				}
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(10, 0, 5); err == nil {
		t.Error("want error for non-power-of-two domain")
	}
	for _, c := range [][2]int{{-1, 3}, {3, 2}, {0, 8}} {
		if _, err := Decompose(8, c[0], c[1]); err == nil {
			t.Errorf("Decompose(8,%d,%d): want error", c[0], c[1])
		}
	}
}

func TestHierCollectorConstruction(t *testing.T) {
	if _, err := NewHierCollector(0, 64, nil); err == nil {
		t.Error("want error for eps=0")
	}
	if _, err := NewHierCollector(1, 48, nil); err == nil {
		t.Error("want error for non-power-of-two buckets")
	}
	c, err := NewHierCollector(1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Depths() != 6 {
		t.Errorf("Depths() = %d, want 6", c.Depths())
	}
	for l := 1; l <= 6; l++ {
		if k := c.Oracle(l).Cardinality(); k != 1<<l {
			t.Errorf("depth %d oracle cardinality = %d, want %d", l, k, 1<<l)
		}
		if e := c.Oracle(l).Epsilon(); e != 1 {
			t.Errorf("depth %d oracle eps = %v, want full budget 1", l, e)
		}
	}
}

func TestHierPerturbDepthsAndClamping(t *testing.T) {
	c, err := NewHierCollector(1, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		rep := c.Perturb(-3, r) // clamped to bucket 0
		if rep.Depth < 1 || rep.Depth > c.Depths() {
			t.Fatalf("depth %d outside [1,%d]", rep.Depth, c.Depths())
		}
		seen[rep.Depth] = true
	}
	for l := 1; l <= c.Depths(); l++ {
		if !seen[l] {
			t.Errorf("depth %d never sampled in 500 perturbs", l)
		}
	}
	if rep := c.Perturb(99, r); rep.Depth < 1 {
		t.Error("out-of-range bucket must clamp, not break")
	}
}

func TestHierEstimatorRejectsBadDepth(t *testing.T) {
	c, err := NewHierCollector(1, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewHierEstimator(c)
	if err := e.Add(HierReport{Depth: 0}); err == nil {
		t.Error("want error for depth 0")
	}
	if err := e.Add(HierReport{Depth: 5}); err == nil {
		t.Error("want error for depth past log2(B)")
	}
}

// hierRun simulates n users drawn from a fixed synthetic distribution,
// returning the estimator and the empirical bucket histogram of the
// population it actually saw.
func hierRun(t *testing.T, c *HierCollector, n int, seed uint64) (*HierEstimator, []float64) {
	t.Helper()
	est := NewHierEstimator(c)
	truth := make([]float64, c.Buckets())
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		v := rng.TruncGauss(r, 0.2, 0.4, -1, 1)
		b := bucketOf(v, c.Buckets())
		truth[b]++
		if err := est.Add(c.Perturb(b, r)); err != nil {
			t.Fatal(err)
		}
	}
	for b := range truth {
		truth[b] /= float64(n)
	}
	return est, truth
}

func spanTruth(truth []float64, lo, hi int) float64 {
	s := 0.0
	for b := lo; b <= hi; b++ {
		s += truth[b]
	}
	return s
}

// TestHierUnbiased checks that the hierarchical range estimate is
// unbiased: averaged over independent runs, the estimate of a fixed span
// matches the empirical truth well within the predicted standard error.
func TestHierUnbiased(t *testing.T) {
	const (
		eps  = 1.0
		B    = 64
		n    = 20_000
		runs = 25
	)
	c, err := NewHierCollector(eps, B, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 10, 41 // unaligned span: exercises a deep decomposition
	var meanEst, meanTruth float64
	for run := 0; run < runs; run++ {
		est, truth := hierRun(t, c, n, uint64(1000+run))
		got, err := est.SpanMass(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		meanEst += got
		meanTruth += spanTruth(truth, lo, hi)
	}
	meanEst /= runs
	meanTruth /= runs
	if diff := math.Abs(meanEst - meanTruth); diff > 0.05 {
		t.Errorf("mean estimate %.4f vs truth %.4f over %d runs: |bias| %.4f > 0.05",
			meanEst, meanTruth, runs, diff)
	}
}

// TestHierMSEShrinksWithN checks the acceptance criterion that MSE shrinks
// as the population grows: n=1e4 vs n=1e5 at eps=1.
func TestHierMSEShrinksWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep is slow")
	}
	const (
		eps  = 1.0
		B    = 64
		runs = 6
	)
	c, err := NewHierCollector(eps, B, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][2]int{{0, 31}, {5, 20}, {13, 50}, {32, 63}, {7, 56}}
	mse := func(n int, seedBase uint64) float64 {
		sum := 0.0
		for run := 0; run < runs; run++ {
			est, truth := hierRun(t, c, n, seedBase+uint64(run))
			for _, q := range queries {
				got, err := est.SpanMass(q[0], q[1])
				if err != nil {
					t.Fatal(err)
				}
				d := got - spanTruth(truth, q[0], q[1])
				sum += d * d
			}
		}
		return sum / float64(runs*len(queries))
	}
	small := mse(10_000, 10)
	large := mse(100_000, 20)
	if large >= small*0.6 {
		t.Errorf("MSE did not shrink with n: n=1e4 MSE %.3g, n=1e5 MSE %.3g", small, large)
	}
}

func TestHierViewMatchesEstimator(t *testing.T) {
	c, err := NewHierCollector(1, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := hierRun(t, c, 2000, 42)
	view := est.View()
	for _, q := range [][2]int{{0, 31}, {3, 17}, {8, 8}, {16, 31}} {
		a, err := est.SpanMass(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		b, err := view.SpanMass(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("span [%d,%d]: estimator %.6f != view %.6f", q[0], q[1], a, b)
		}
	}
}

func TestHierMerge(t *testing.T) {
	c, err := NewHierCollector(1, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := hierRun(t, c, 1000, 1)
	b, _ := hierRun(t, c, 1000, 2)
	whole := NewHierEstimator(c)
	whole.Merge(a)
	whole.Merge(b)
	if whole.N() != a.N()+b.N() {
		t.Errorf("merged N = %d, want %d", whole.N(), a.N()+b.N())
	}
}

func TestHierFullDomainNearOne(t *testing.T) {
	c, err := NewHierCollector(1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := hierRun(t, c, 30_000, 77)
	got, err := est.SpanMass(0, 63)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.15 {
		t.Errorf("full-domain mass = %.4f, want ~1", got)
	}
}
