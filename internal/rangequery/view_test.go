package rangequery

import (
	"math"
	"testing"

	"ldp/internal/rng"
	"ldp/internal/schema"
)

func viewTestCollector(t *testing.T) *Collector {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(s, 1, Config{Buckets: 16, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// TestViewMatchesAccumulator pins the precomputed View against the
// estimator-backed Accumulator: every 1-D and 2-D answer must agree to
// within float roundoff, since the view only reorders when the debiasing
// and Norm-Sub work happens.
func TestViewMatchesAccumulator(t *testing.T) {
	col := viewTestCollector(t)
	acc := NewAccumulator(col)
	r := rng.New(5)
	tup := schema.NewTuple(col.Schema())
	for i := 0; i < 4000; i++ {
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -0.5, 1)
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Add(rep); err != nil {
			t.Fatal(err)
		}
	}

	v := acc.View()
	if v.N() != acc.N() {
		t.Fatalf("view N = %d, accumulator N = %d", v.N(), acc.N())
	}
	queries := [][2]float64{{-1, 1}, {-0.6, 0.2}, {0.11, 0.13}, {0.5, -0.5}}
	for attr := 0; attr < 2; attr++ {
		for _, q := range queries {
			want, err1 := acc.Range1D(attr, q[0], q[1])
			got, err2 := v.Range1D(attr, q[0], q[1])
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("attr %d %v: error mismatch (%v vs %v)", attr, q, err1, err2)
			}
			if math.Abs(want-got) > 1e-12 {
				t.Errorf("attr %d range %v: accumulator %.9f != view %.9f", attr, q, want, got)
			}
		}
	}
	for _, q := range [][4]float64{{-1, 1, -1, 1}, {-0.4, 0.3, 0, 0.9}, {0.2, 0.21, -0.9, -0.8}} {
		want, err1 := acc.Range2D(0, 1, q[0], q[1], q[2], q[3])
		got, err2 := v.Range2D(0, 1, q[0], q[1], q[2], q[3])
		if err1 != nil || err2 != nil {
			t.Fatalf("2-D %v: %v / %v", q, err1, err2)
		}
		if math.Abs(want-got) > 1e-12 {
			t.Errorf("2-D %v: accumulator %.9f != view %.9f", q, want, got)
		}
		// The argument order is free on both surfaces.
		swapped, err := v.Range2D(1, 0, q[2], q[3], q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if swapped != got {
			t.Errorf("2-D %v: swapped order %.9f != %.9f", q, swapped, got)
		}
	}

	// Error surfaces survive on the view.
	if _, err := v.Range1D(2, -1, 1); err == nil {
		t.Error("Range1D on a categorical attribute should error")
	}
	if _, err := v.Range1D(99, -1, 1); err == nil {
		t.Error("Range1D on an out-of-range attribute should error")
	}
	if v.Hier(0) == nil || v.Hier(2) != nil || v.Hier(-1) != nil {
		t.Error("Hier accessor shape wrong")
	}
	if v.GridFor(0) == nil || v.GridFor(99) != nil {
		t.Error("GridFor accessor shape wrong")
	}
	if v.Collector() != col {
		t.Error("Collector accessor lost the configuration")
	}
}

// TestHierViewSpanMassExhaustive pins the allocation-free inline dyadic
// walk of HierView.SpanMass against the Decompose-based estimator path
// over every (lo, hi) pair of the domain, including the error cases.
func TestHierViewSpanMassExhaustive(t *testing.T) {
	c, err := NewHierCollector(1, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewHierEstimator(c)
	r := rng.New(9)
	for i := 0; i < 3000; i++ {
		if err := est.Add(c.Perturb(r.IntN(16), r)); err != nil {
			t.Fatal(err)
		}
	}
	view := est.View()
	for lo := 0; lo < 16; lo++ {
		for hi := lo; hi < 16; hi++ {
			want, err := est.SpanMass(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			got, err := view.SpanMass(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(want-got) > 1e-12 {
				t.Fatalf("span [%d,%d]: estimator %.9f != view %.9f", lo, hi, want, got)
			}
		}
	}
	for _, q := range [][2]int{{-1, 3}, {0, 16}, {5, 4}} {
		if _, err := view.SpanMass(q[0], q[1]); err == nil {
			t.Errorf("span [%d,%d] accepted", q[0], q[1])
		}
	}
}

// TestGridViewMatchesEstimator pins the precomputed grid view against
// the estimator, including the Joint copy semantics.
func TestGridViewMatchesEstimator(t *testing.T) {
	c, err := NewGridCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewGridEstimator(c)
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		if err := est.Add(c.Perturb(rng.Uniform(r, -1, 1), rng.Uniform(r, -1, 1), r)); err != nil {
			t.Fatal(err)
		}
	}
	v := est.View()
	if v.Cells() != 4 {
		t.Fatalf("cells = %d, want 4", v.Cells())
	}
	for _, q := range [][4]float64{{-1, 1, -1, 1}, {-0.3, 0.8, -1, 0}, {0, 0.1, 0.1, 0.2}} {
		want := est.RectMass(q[0], q[1], q[2], q[3])
		got := v.RectMass(q[0], q[1], q[2], q[3])
		if math.Abs(want-got) > 1e-12 {
			t.Errorf("rect %v: estimator %.9f != view %.9f", q, want, got)
		}
	}
	j := v.Joint()
	j[0] = 99 // the returned histogram is a copy
	if v.Joint()[0] == 99 {
		t.Error("Joint returned the view's internal slice")
	}
}
