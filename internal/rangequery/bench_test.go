package rangequery

import (
	"math"
	"sync"
	"testing"

	"ldp/internal/freq"
	"ldp/internal/rng"
)

// The benchmarks compare the two ways of answering 1-D range queries over
// a B=256 bucket domain at eps=1 with n=100k users: the hierarchical
// interval oracle (every user reports one dyadic depth; queries sum at
// most 2*log2(B) = 16 node estimates from a frozen view) against the flat
// baseline (every user reports their leaf bucket through OUE over all 256
// values; queries sum up to 256 leaf estimates). Each benchmark reports
// the empirical MSE over the query workload as an extra metric, so `go
// test -bench Range256` shows the accuracy and throughput sides of the
// trade in one table.

const (
	benchBuckets = 256
	benchEps     = 1.0
	benchUsers   = 100_000
)

type benchState struct {
	view    *HierView // frozen hierarchical estimates
	flat    []float64 // debiased flat leaf estimates
	truth   []float64 // empirical bucket histogram
	queries [][2]int  // inclusive bucket spans
	hierMSE float64
	flatMSE float64
}

var (
	benchOnce sync.Once
	bench     benchState
)

func setupBench(b *testing.B) *benchState {
	benchOnce.Do(func() {
		hier, err := NewHierCollector(benchEps, benchBuckets, nil)
		if err != nil {
			b.Fatal(err)
		}
		hierEst := NewHierEstimator(hier)
		flatOracle, err := freq.NewOUE(benchEps, benchBuckets)
		if err != nil {
			b.Fatal(err)
		}
		flatEst := freq.NewEstimator(flatOracle)
		truth := make([]float64, benchBuckets)
		// Each protocol gets its own n-user population (same data
		// distribution, independent noise).
		for i := 0; i < benchUsers; i++ {
			r := rng.NewStream(2024, uint64(i))
			bucket := bucketOf(rng.TruncGauss(r, 0.2, 0.4, -1, 1), benchBuckets)
			truth[bucket]++
			if err := hierEst.Add(hier.Perturb(bucket, r)); err != nil {
				b.Fatal(err)
			}
			flatEst.Add(flatOracle.Perturb(bucket, r))
		}
		for i := range truth {
			truth[i] /= benchUsers
		}
		// A spread of narrow, medium and wide unaligned spans.
		var queries [][2]int
		qr := rng.New(7)
		for _, width := range []int{4, 16, 64, 160, 240} {
			for q := 0; q < 8; q++ {
				lo := qr.IntN(benchBuckets - width)
				queries = append(queries, [2]int{lo, lo + width - 1})
			}
		}
		st := benchState{
			view:    hierEst.View(),
			flat:    flatEst.Estimates(),
			truth:   truth,
			queries: queries,
		}
		for _, q := range queries {
			tm := spanTruth(truth, q[0], q[1])
			hm, err := st.view.SpanMass(q[0], q[1])
			if err != nil {
				b.Fatal(err)
			}
			fm := flatSpan(st.flat, q[0], q[1])
			st.hierMSE += (hm - tm) * (hm - tm)
			st.flatMSE += (fm - tm) * (fm - tm)
		}
		st.hierMSE /= float64(len(queries))
		st.flatMSE /= float64(len(queries))
		bench = st
	})
	return &bench
}

func flatSpan(est []float64, lo, hi int) float64 {
	m := 0.0
	for i := lo; i <= hi; i++ {
		m += est[i]
	}
	return math.Min(1, math.Max(0, m))
}

func BenchmarkHierRange256(b *testing.B) {
	st := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := st.queries[i%len(st.queries)]
		if _, err := st.view.SpanMass(q[0], q[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.hierMSE, "mse")
}

func BenchmarkFlatRange256(b *testing.B) {
	st := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := st.queries[i%len(st.queries)]
		flatSpan(st.flat, q[0], q[1])
	}
	b.ReportMetric(st.flatMSE, "mse")
}
