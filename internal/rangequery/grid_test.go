package rangequery

import (
	"math"
	"testing"

	"ldp/internal/rng"
)

func TestGridCollectorConstruction(t *testing.T) {
	if _, err := NewGridCollector(0, 8, nil); err == nil {
		t.Error("want error for eps=0")
	}
	if _, err := NewGridCollector(1, 1, nil); err == nil {
		t.Error("want error for 1 cell per axis")
	}
	c, err := NewGridCollector(1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k := c.Oracle().Cardinality(); k != 64 {
		t.Errorf("oracle cardinality = %d, want g^2 = 64", k)
	}
}

func TestCellOf(t *testing.T) {
	c, err := NewGridCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y float64
		want int
	}{
		{-1, -1, 0},
		{-1, 1, 3},
		{1, -1, 12},
		{1, 1, 15},
		{0, 0, 10},           // both in cell 2 of 4
		{-2, 5, 3},           // clamped
		{0.49, -0.51, 8 + 0}, // x cell 2, y cell 0
	}
	for _, tc := range cases {
		if got := c.CellOf(tc.x, tc.y); got != tc.want {
			t.Errorf("CellOf(%v,%v) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

// gridRun simulates n users with correlated coordinates, returning the
// estimator and the empirical cell histogram of the population.
func gridRun(t *testing.T, c *GridCollector, n int, seed uint64) (*GridEstimator, []float64) {
	t.Helper()
	est := NewGridEstimator(c)
	g := c.Cells()
	truth := make([]float64, g*g)
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		x := rng.TruncGauss(r, 0.3, 0.35, -1, 1)
		y := mechClamp(x/2 + 0.3*r.NormFloat64())
		truth[c.CellOf(x, y)]++
		est.Add(c.Perturb(x, y, r))
	}
	for i := range truth {
		truth[i] /= float64(n)
	}
	return est, truth
}

func mechClamp(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}

// TestGridJointConsistent checks the acceptance criterion: post-processed
// grid answers are non-negative and the joint sums to at most one —
// Norm-Sub in fact normalizes it to exactly one.
func TestGridJointConsistent(t *testing.T) {
	c, err := NewGridCollector(1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 10, 5000} {
		est, _ := gridRun(t, c, n, 99)
		joint := est.Joint()
		sum := 0.0
		for i, f := range joint {
			if f < 0 {
				t.Fatalf("n=%d: joint[%d] = %v < 0 after Norm-Sub", n, i, f)
			}
			sum += f
		}
		if sum > 1+1e-9 {
			t.Errorf("n=%d: joint sums to %v > 1", n, sum)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: Norm-Sub should normalize to 1, got %v", n, sum)
		}
	}
}

func TestGridRectMassAccuracy(t *testing.T) {
	const (
		eps = 1.0
		n   = 50_000
	)
	c, err := NewGridCollector(eps, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, truth := gridRun(t, c, n, 3)
	g := c.Cells()
	// Cell-aligned rectangle: x cells [4,6], y cells [3,5].
	trueMass := 0.0
	for cx := 4; cx <= 6; cx++ {
		for cy := 3; cy <= 5; cy++ {
			trueMass += truth[cx*g+cy]
		}
	}
	w := 2 / float64(g)
	got := est.RectMass(-1+4*w, -1+7*w, -1+3*w, -1+6*w)
	if math.Abs(got-trueMass) > 0.08 {
		t.Errorf("rect mass = %.4f, true %.4f", got, trueMass)
	}
	// Whole square has mass 1 under the consistent joint.
	if whole := est.RectMass(-1, 1, -1, 1); math.Abs(whole-1) > 1e-9 {
		t.Errorf("whole-square mass = %v, want 1", whole)
	}
}

func TestGridRectMassEdgeCases(t *testing.T) {
	c, err := NewGridCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewGridEstimator(c)
	if m := est.RectMass(0.5, -0.5, -1, 1); m != 0 {
		t.Errorf("inverted x range: mass %v, want 0", m)
	}
	if m := est.RectMass(-1, 1, 0.3, 0.3); m != 0 {
		t.Errorf("empty y range: mass %v, want 0", m)
	}
}

func TestGridMerge(t *testing.T) {
	c, err := NewGridCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := gridRun(t, c, 500, 1)
	b, _ := gridRun(t, c, 700, 2)
	a.Merge(b)
	if a.N() != 1200 {
		t.Errorf("merged N = %d, want 1200", a.N())
	}
}
