package rangequery

import (
	"fmt"
	"math/bits"

	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// The 1-D hierarchical interval oracle decomposes a B-bucket domain
// (B a power of two) into a complete binary tree of dyadic intervals:
// depth l (1 <= l <= log2 B) partitions the domain into 2^l nodes of
// B/2^l buckets each. Every user samples one depth uniformly and reports
// the node containing their bucket through a frequency oracle at the full
// budget eps; the aggregator answers an arbitrary bucket range by summing
// the estimates of the O(log B) nodes in its canonical dyadic cover
// (Hay et al. 2010; Yang et al.'s HIO under LDP).
//
// Compared to estimating the B leaf frequencies directly, the hierarchy
// pays a factor log2(B) in per-node users but caps the number of noisy
// terms per query at 2 log2(B) instead of O(B), which wins for all but
// the narrowest ranges.

// Node identifies one dyadic interval: at depth l, index i covers buckets
// [i*B/2^l, (i+1)*B/2^l). Depth 0 (the root) is never reported — its mass
// is 1 by definition.
type Node struct {
	Depth int
	Index int
}

// Decompose returns the canonical dyadic cover of the inclusive bucket
// range [lo, hi] in a domain of the given power-of-two size: greedily the
// largest aligned node that starts at the cursor and fits. The cover has
// at most 2*log2(buckets) nodes, all with Depth >= 1 (the full domain is
// returned as the two depth-1 halves).
func Decompose(buckets, lo, hi int) ([]Node, error) {
	if buckets < 2 || bits.OnesCount(uint(buckets)) != 1 {
		return nil, fmt.Errorf("rangequery: buckets must be a power of two >= 2, got %d", buckets)
	}
	if lo < 0 || hi >= buckets || lo > hi {
		return nil, fmt.Errorf("rangequery: bucket range [%d,%d] outside domain [0,%d]", lo, hi, buckets-1)
	}
	maxDepth := bits.Len(uint(buckets)) - 1
	var nodes []Node
	for lo <= hi {
		// Largest power-of-two block aligned at lo...
		size := lo & -lo
		if lo == 0 || size > buckets/2 {
			size = buckets / 2 // depth >= 1: never emit the root
		}
		// ...shrunk until it fits in the remaining range.
		for size > hi-lo+1 {
			size >>= 1
		}
		depth := maxDepth - (bits.Len(uint(size)) - 1)
		nodes = append(nodes, Node{Depth: depth, Index: lo / size})
		lo += size
	}
	return nodes, nil
}

// HierReport is one user's hierarchical interval report: a frequency-
// oracle response about the node containing the user's bucket at the
// sampled depth.
type HierReport struct {
	Depth int
	Resp  freq.Response
}

// HierCollector randomizes bucket indices into hierarchical interval
// reports. It is safe for concurrent use.
type HierCollector struct {
	eps     float64
	buckets int
	depths  int           // log2(buckets)
	oracles []freq.Oracle // oracles[l-1] serves depth l over 2^l nodes
	bits    bool          // whether the oracle responses carry bitsets
}

// NewHierCollector builds the interval oracle over a power-of-two bucket
// domain. factory chooses the frequency oracle per depth (nil means OUE);
// each depth runs at the full budget eps because every user reports
// exactly one depth.
func NewHierCollector(eps float64, buckets int, factory freq.Factory) (*HierCollector, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if buckets < 2 || bits.OnesCount(uint(buckets)) != 1 {
		return nil, fmt.Errorf("rangequery: buckets must be a power of two >= 2, got %d", buckets)
	}
	if factory == nil {
		factory = func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) }
	}
	depths := bits.Len(uint(buckets)) - 1
	oracles := make([]freq.Oracle, depths)
	for l := 1; l <= depths; l++ {
		o, err := factory(eps, 1<<l)
		if err != nil {
			return nil, fmt.Errorf("rangequery: oracle for depth %d: %w", l, err)
		}
		oracles[l-1] = o
	}
	return &HierCollector{
		eps:     eps,
		buckets: buckets,
		depths:  depths,
		oracles: oracles,
		bits:    freq.UsesBitset(oracles[0]),
	}, nil
}

// Epsilon returns the privacy budget.
func (c *HierCollector) Epsilon() float64 { return c.eps }

// Buckets returns the leaf domain size B.
func (c *HierCollector) Buckets() int { return c.buckets }

// Depths returns the number of reporting depths, log2(B).
func (c *HierCollector) Depths() int { return c.depths }

// Oracle returns the frequency oracle serving the given depth (1-based).
func (c *HierCollector) Oracle(depth int) freq.Oracle { return c.oracles[depth-1] }

// Perturb samples a tree depth uniformly and reports the dyadic ancestor
// of the (clamped) bucket at that depth under eps-LDP.
func (c *HierCollector) Perturb(bucket int, r *rng.Rand) HierReport {
	if bucket < 0 {
		bucket = 0
	}
	if bucket >= c.buckets {
		bucket = c.buckets - 1
	}
	depth := 1 + r.IntN(c.depths)
	node := bucket >> (c.depths - depth)
	return HierReport{Depth: depth, Resp: c.oracles[depth-1].Perturb(node, r)}
}

// HierEstimator aggregates hierarchical reports and answers range queries
// by dyadic decomposition. It is not safe for concurrent use; use one per
// goroutine and Merge (the top-level Aggregator adds locking).
type HierEstimator struct {
	col    *HierCollector
	levels []*freq.Estimator
}

// NewHierEstimator creates an estimator bound to the collector's oracles.
func NewHierEstimator(c *HierCollector) *HierEstimator {
	levels := make([]*freq.Estimator, c.depths)
	for i, o := range c.oracles {
		levels[i] = freq.NewEstimator(o)
	}
	return &HierEstimator{col: c, levels: levels}
}

// Check validates a report against the collector configuration without
// mutating any state.
func (e *HierEstimator) Check(rep HierReport) error {
	if rep.Depth < 1 || rep.Depth > e.col.depths {
		return fmt.Errorf("rangequery: report depth %d outside [1,%d]", rep.Depth, e.col.depths)
	}
	return checkResponse(rep.Resp, 1<<rep.Depth, e.col.bits)
}

// Add folds one report in.
func (e *HierEstimator) Add(rep HierReport) error {
	if err := e.Check(rep); err != nil {
		return err
	}
	e.levels[rep.Depth-1].Add(rep.Resp)
	return nil
}

// checkResponse guards the estimators against responses whose shape does
// not match the oracle — decoded network frames are attacker-controlled:
// an undersized bitset would panic deep inside freq.Estimator.Add, a
// bitset folded into a value-type (GRR) estimator would poison every
// domain value from one report, and an out-of-range value would silently
// skew the reporter count.
func checkResponse(resp freq.Response, cardinality int, wantBits bool) error {
	if wantBits {
		if resp.Bits == nil {
			return fmt.Errorf("rangequery: response is missing the oracle's bitset")
		}
		if len(resp.Bits) != freq.BitsetWords(cardinality) {
			return fmt.Errorf("rangequery: response bitset has %d words, oracle domain %d needs %d",
				len(resp.Bits), cardinality, freq.BitsetWords(cardinality))
		}
		return nil
	}
	if resp.Bits != nil {
		return fmt.Errorf("rangequery: unexpected bitset for a value-type oracle")
	}
	if resp.Value < 0 || resp.Value >= cardinality {
		return fmt.Errorf("rangequery: response value %d outside [0,%d)", resp.Value, cardinality)
	}
	return nil
}

// Merge combines another estimator built from the same collector.
func (e *HierEstimator) Merge(o *HierEstimator) {
	for i := range e.levels {
		e.levels[i].Merge(o.levels[i])
	}
}

// clone deep-copies the estimator through the support counts (used by
// Aggregator.Merge to snapshot without aliasing).
func (e *HierEstimator) clone() *HierEstimator {
	c := NewHierEstimator(e.col)
	for i, l := range e.levels {
		// Shapes match by construction; AddCounts cannot fail.
		_ = c.levels[i].AddCounts(l.Counts(), l.N())
	}
	return c
}

// N returns the number of reports aggregated across all depths.
func (e *HierEstimator) N() int64 {
	var n int64
	for _, l := range e.levels {
		n += l.N()
	}
	return n
}

// NodeEstimate returns the debiased frequency estimate of one dyadic node,
// computed from the users that sampled its depth.
func (e *HierEstimator) NodeEstimate(n Node) float64 {
	return e.levels[n.Depth-1].Estimates()[n.Index]
}

// SpanMass estimates the population mass of the inclusive bucket range
// [lo, hi] by summing its canonical cover's node estimates, clamped into
// [0, 1]. The estimate before clamping is unbiased; its variance is the
// sum of at most 2*log2(B) node variances.
func (e *HierEstimator) SpanMass(lo, hi int) (float64, error) {
	nodes, err := Decompose(e.col.buckets, lo, hi)
	if err != nil {
		return 0, err
	}
	mass := 0.0
	// One Estimates() call per touched depth, not per node.
	byDepth := map[int][]float64{}
	for _, n := range nodes {
		est, ok := byDepth[n.Depth]
		if !ok {
			est = e.levels[n.Depth-1].Estimates()
			byDepth[n.Depth] = est
		}
		mass += est[n.Index]
	}
	if mass < 0 {
		mass = 0
	}
	if mass > 1 {
		mass = 1
	}
	return mass, nil
}

// Histogram returns the debiased leaf-level (depth log2 B) frequency
// estimates: the flat-domain view of the hierarchy, as a baseline and for
// consistency post-processing.
func (e *HierEstimator) Histogram() []float64 {
	return e.levels[len(e.levels)-1].Estimates()
}

// View snapshots the debiased estimates of every depth so that many
// queries can be served without re-debiasing; this is what a server
// answering heavy query traffic should hand out per aggregation epoch.
func (e *HierEstimator) View() *HierView {
	levels := make([][]float64, len(e.levels))
	for i, l := range e.levels {
		levels[i] = l.Estimates()
	}
	return &HierView{buckets: e.col.buckets, levels: levels}
}

// viewPartial snapshots like View but re-debiases only the depths the
// dirty predicate flags (0-based), aliasing the clean depths' estimate
// slices from prev — safe because HierView levels are immutable once
// built. prev must come from an estimator of the same collector.
func (e *HierEstimator) viewPartial(prev *HierView, dirty func(d int) bool) *HierView {
	levels := make([][]float64, len(e.levels))
	for d, l := range e.levels {
		if dirty(d) {
			levels[d] = l.Estimates()
		} else {
			levels[d] = prev.levels[d]
		}
	}
	return &HierView{buckets: e.col.buckets, levels: levels}
}

// HierView is an immutable snapshot of a HierEstimator's per-depth
// estimates. It is safe for concurrent use.
type HierView struct {
	buckets int
	levels  [][]float64
}

// NodeEstimate returns the snapshotted estimate of one dyadic node.
func (v *HierView) NodeEstimate(n Node) float64 {
	return v.levels[n.Depth-1][n.Index]
}

// SpanMass answers the inclusive bucket range [lo, hi] from the snapshot
// in O(log B) time, clamped into [0, 1]. It walks the canonical dyadic
// cover in place (the same greedy decomposition as Decompose) without
// materializing the node list, so a cached-view query allocates nothing.
func (v *HierView) SpanMass(lo, hi int) (float64, error) {
	if lo < 0 || hi >= v.buckets || lo > hi {
		return 0, fmt.Errorf("rangequery: bucket range [%d,%d] outside domain [0,%d]", lo, hi, v.buckets-1)
	}
	maxDepth := len(v.levels)
	mass := 0.0
	for lo <= hi {
		size := lo & -lo
		if lo == 0 || size > v.buckets/2 {
			size = v.buckets / 2
		}
		for size > hi-lo+1 {
			size >>= 1
		}
		depth := maxDepth - (bits.Len(uint(size)) - 1)
		mass += v.levels[depth-1][lo/size]
		lo += size
	}
	if mass < 0 {
		mass = 0
	}
	if mass > 1 {
		mass = 1
	}
	return mass, nil
}
