package rangequery

import (
	"math"
	"testing"

	"ldp/internal/freq"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func TestNewCollectorValidation(t *testing.T) {
	s := twoNumSchema(t)
	if _, err := NewCollector(s, 1, Config{Buckets: 100}); err == nil {
		t.Error("want error for non-power-of-two buckets")
	}
	if _, err := NewCollector(s, 1, Config{GridFraction: 1.5}); err == nil {
		t.Error("want error for GridFraction > 1")
	}
	catOnly, err := schema.New(schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollector(catOnly, 1, Config{}); err == nil {
		t.Error("want error for schema without numeric attributes")
	}
}

func TestCollectorDefaults(t *testing.T) {
	c, err := NewCollector(twoNumSchema(t), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hierarchy().Buckets() != 256 {
		t.Errorf("default buckets = %d, want 256", c.Hierarchy().Buckets())
	}
	if c.Grid() == nil || c.Grid().Cells() != 8 {
		t.Error("default grid should be enabled at g=8 for two numeric attributes")
	}
	if c.GridFraction() != 0.5 {
		t.Errorf("default grid fraction = %v, want 0.5", c.GridFraction())
	}
	if len(c.Pairs()) != 1 || c.Pairs()[0] != [2]int{0, 1} {
		t.Errorf("pairs = %v, want [[0 1]]", c.Pairs())
	}
}

func TestCollectorGridDisabled(t *testing.T) {
	// Explicitly disabled.
	c, err := NewCollector(twoNumSchema(t), 1, Config{GridFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Grid() != nil || c.GridFraction() != 0 {
		t.Error("GridFraction < 0 must disable grids")
	}
	// Implicitly disabled: only one numeric attribute, no pairs.
	one, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	c, err = NewCollector(one, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Grid() != nil {
		t.Error("single numeric attribute must disable grids")
	}
}

func TestPerturbRouting(t *testing.T) {
	s := twoNumSchema(t)
	c, err := NewCollector(s, 1, Config{Buckets: 32, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	tp := schema.NewTuple(s)
	tp.Num[0], tp.Num[1] = 0.4, -0.2
	r := rng.New(5)
	var nHier, nGrid int
	for i := 0; i < 2000; i++ {
		rep, err := c.Perturb(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		switch rep.Kind {
		case KindHier:
			nHier++
			if rep.Attr != 0 && rep.Attr != 1 {
				t.Fatalf("hier report for attribute %d, want a numeric attribute", rep.Attr)
			}
		case KindGrid:
			nGrid++
			if rep.Pair != 0 {
				t.Fatalf("grid report for pair %d, want 0", rep.Pair)
			}
		default:
			t.Fatalf("unknown report kind %d", rep.Kind)
		}
	}
	if nHier == 0 || nGrid == 0 {
		t.Fatalf("routing starved a task: hier=%d grid=%d", nHier, nGrid)
	}
	// 50/50 split: each side should get roughly half.
	if nGrid < 800 || nGrid > 1200 {
		t.Errorf("grid share %d/2000 far from the configured 0.5", nGrid)
	}
}

func TestPerturbRejectsBadTuple(t *testing.T) {
	s := twoNumSchema(t)
	c, err := NewCollector(s, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tp := schema.NewTuple(s)
	tp.Num[0] = 3 // outside [-1, 1]
	if _, err := c.Perturb(tp, rng.New(1)); err == nil {
		t.Error("want error for out-of-domain tuple")
	}
}

func TestAggregatorRejectsBadReports(t *testing.T) {
	s := twoNumSchema(t)
	c, err := NewCollector(s, 1, Config{Buckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAggregator(c)
	if err := a.Add(Report{Kind: KindHier, Attr: 2, Depth: 1}); err == nil {
		t.Error("want error for hier report on categorical attribute")
	}
	if err := a.Add(Report{Kind: KindHier, Attr: 0, Depth: 99}); err == nil {
		t.Error("want error for bad depth")
	}
	if err := a.Add(Report{Kind: KindGrid, Pair: 5}); err == nil {
		t.Error("want error for out-of-range pair")
	}
	if err := a.Add(Report{Kind: ReportKind(9)}); err == nil {
		t.Error("want error for unknown kind")
	}
	if a.N() != 0 {
		t.Errorf("rejected reports must not count: N = %d", a.N())
	}

	// Responses whose bitset does not match the oracle domain (e.g. a
	// crafted network frame) must be rejected, not panic downstream.
	if err := a.Add(Report{Kind: KindHier, Attr: 0, Depth: 1, Resp: freq.Response{Bits: freq.NewBitset(0)}}); err == nil {
		t.Error("want error for empty bitset on a 2-node depth")
	}
	if err := a.Add(Report{Kind: KindHier, Attr: 0, Depth: 4, Resp: freq.Response{Bits: freq.NewBitset(129)}}); err == nil {
		t.Error("want error for bitset wider than the depth's domain")
	}
	if err := a.Add(Report{Kind: KindGrid, Pair: 0, Resp: freq.Response{Bits: freq.NewBitset(999)}}); err == nil {
		t.Error("want error for oversized grid bitset")
	}

	noGrid, err := NewCollector(s, 1, Config{GridFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	ng := NewAggregator(noGrid)
	if err := ng.Add(Report{Kind: KindGrid, Pair: 0}); err == nil {
		t.Error("want error for grid report when grids are disabled")
	}
	if _, err := ng.Range2D(0, 1, -1, 1, -1, 1); err == nil {
		t.Error("want error for Range2D when grids are disabled")
	}
}

// endToEnd simulates a population through the full collector/aggregator
// path and returns the aggregator plus the raw values for ground truth.
func endToEnd(t *testing.T, s *schema.Schema, c *Collector, n int, seed uint64) (*Aggregator, [][2]float64) {
	t.Helper()
	agg := NewAggregator(c)
	vals := make([][2]float64, n)
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		tp := schema.NewTuple(s)
		x := rng.TruncGauss(r, 0.1, 0.4, -1, 1)
		y := mechClamp(-x/2 + 0.25*r.NormFloat64())
		tp.Num[0], tp.Num[1] = x, y
		tp.Cat[2] = r.IntN(5)
		vals[i] = [2]float64{x, y}
		rep, err := c.Perturb(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	return agg, vals
}

func TestEndToEndRangeQueries(t *testing.T) {
	const (
		eps = 1.0
		n   = 100_000
	)
	s := twoNumSchema(t)
	c, err := NewCollector(s, eps, Config{Buckets: 64, GridCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	agg, vals := endToEnd(t, s, c, n, 11)
	if agg.N() != n {
		t.Fatalf("aggregator saw %d reports, want %d", agg.N(), n)
	}

	// 1-D: P(x in [-0.25, 0.5]), endpoints on bucket boundaries (B=64).
	xlo, xhi := -0.25, 0.5
	trueX := 0.0
	for _, v := range vals {
		if v[0] >= xlo && v[0] <= xhi {
			trueX++
		}
	}
	trueX /= n
	gotX, err := agg.Range1D(0, xlo, xhi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotX-trueX) > 0.15 {
		t.Errorf("Range1D = %.4f, true %.4f", gotX, trueX)
	}

	// 2-D: P(x in [0, 0.75] AND y in [-0.5, 0.25]) on g=8 cell boundaries.
	trueXY := 0.0
	for _, v := range vals {
		if v[0] >= 0 && v[0] <= 0.75 && v[1] >= -0.5 && v[1] <= 0.25 {
			trueXY++
		}
	}
	trueXY /= n
	gotXY, err := agg.Range2D(0, 1, 0, 0.75, -0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotXY-trueXY) > 0.1 {
		t.Errorf("Range2D = %.4f, true %.4f", gotXY, trueXY)
	}

	// Swapped attribute order answers the same query.
	swapped, err := agg.Range2D(1, 0, -0.5, 0.25, 0, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(swapped-gotXY) > 1e-12 {
		t.Errorf("Range2D order-sensitivity: %.6f vs %.6f", swapped, gotXY)
	}

	// Error paths.
	if _, err := agg.Range1D(2, -1, 1); err == nil {
		t.Error("want error for Range1D on categorical attribute")
	}
	if got, err := agg.Range1D(0, 0.5, -0.5); err != nil || got != 0 {
		t.Errorf("empty range: got (%v, %v), want (0, nil)", got, err)
	}
}

func TestAggregatorMerge(t *testing.T) {
	s := twoNumSchema(t)
	c, err := NewCollector(s, 1, Config{Buckets: 32, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := endToEnd(t, s, c, 6000, 21)
	b, _ := endToEnd(t, s, c, 4000, 22)
	merged := NewAggregator(c)
	merged.Merge(a)
	merged.Merge(b)
	if merged.N() != 10_000 {
		t.Errorf("merged N = %d, want 10000", merged.N())
	}
	got, err := merged.Range1D(0, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.25 {
		t.Errorf("merged full-domain mass %.4f, want ~1", got)
	}
}

// TestMergeNoDeadlock exercises the lock-ordering hazards: concurrent
// cross-merges of two aggregators and a self-merge. A regression hangs
// the test until its timeout.
func TestMergeNoDeadlock(t *testing.T) {
	s := twoNumSchema(t)
	c, err := NewCollector(s, 1, Config{Buckets: 16, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := endToEnd(t, s, c, 200, 31)
	b, _ := endToEnd(t, s, c, 300, 32)
	done := make(chan struct{}, 2)
	go func() {
		for i := 0; i < 50; i++ {
			a.Merge(b)
		}
		done <- struct{}{}
	}()
	go func() {
		for i := 0; i < 50; i++ {
			b.Merge(a)
		}
		done <- struct{}{}
	}()
	<-done
	<-done

	self, _ := endToEnd(t, s, c, 100, 33)
	n := self.N()
	self.Merge(self) // must not deadlock
	if self.N() != 2*n {
		t.Errorf("self-merge N = %d, want %d", self.N(), 2*n)
	}
}

// TestFoldBatch: the batch entry points fold exactly like per-report Add,
// and one invalid report rejects the whole batch before any state change.
func TestFoldBatch(t *testing.T) {
	s := twoNumSchema(t)
	c, err := NewCollector(s, 1, Config{Buckets: 32, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reps []Report
	for i := 0; i < 400; i++ {
		r := rng.NewStream(41, uint64(i))
		tp := schema.NewTuple(s)
		tp.Num[0] = rng.TruncGauss(r, 0.1, 0.4, -1, 1)
		tp.Num[1] = rng.TruncGauss(r, -0.2, 0.5, -1, 1)
		tp.Cat[2] = r.IntN(5)
		rep, err := c.Perturb(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}

	one, batch := NewAggregator(c), NewAggregator(c)
	for _, rep := range reps {
		if err := one.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.FoldBatch(reps); err != nil {
		t.Fatal(err)
	}
	if one.N() != batch.N() {
		t.Fatalf("N %d != %d", batch.N(), one.N())
	}
	for _, span := range [][2]float64{{-1, 1}, {-0.5, 0.5}, {0, 0.9}} {
		a, err := one.Range1D(0, span[0], span[1])
		if err != nil {
			t.Fatal(err)
		}
		b, err := batch.Range1D(0, span[0], span[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Range1D%v: %v != %v", span, b, a)
		}
	}

	// A bad report anywhere rejects the batch atomically.
	bad := append(append([]Report{}, reps[:3]...), Report{Kind: KindHier, Attr: 0, Depth: 99})
	fresh := NewAggregator(c)
	if err := fresh.FoldBatch(bad); err == nil {
		t.Fatal("FoldBatch accepted an invalid depth")
	}
	if fresh.N() != 0 {
		t.Fatalf("rejected batch still folded %d reports", fresh.N())
	}

	// The unlocked Accumulator batch path behaves identically.
	acc := NewAccumulator(c)
	if err := acc.FoldBatch(reps); err != nil {
		t.Fatal(err)
	}
	if acc.N() != one.N() {
		t.Fatalf("accumulator N %d != %d", acc.N(), one.N())
	}
	if err := acc.FoldBatch(bad); err == nil {
		t.Fatal("Accumulator.FoldBatch accepted an invalid depth")
	}
	if acc.N() != one.N() {
		t.Fatal("rejected batch changed accumulator state")
	}
}
