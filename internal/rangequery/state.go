package rangequery

import (
	"fmt"
	"math"
)

// AccState is the exported raw aggregate of an Accumulator: the support
// counts and reporter counts of every per-depth hierarchy estimator and
// every pair grid, in a fixed order derived from the collector
// configuration (numeric attributes in schema order, depths ascending,
// then pairs in Collector.Pairs order). All of it is additive — two
// states built from the same collector configuration combine by
// elementwise summation — which is what lets a fleet of edge aggregators
// fold into a root without touching estimator internals.
type AccState struct {
	// N is the total number of range reports folded in.
	N int64
	// Levels holds one entry per (numeric attribute, depth), attribute-
	// major: for attribute i of the collector's numeric list and depth d
	// in [1, log2 B], Levels[i*depths + d-1].
	Levels []CountState
	// Grids holds one entry per attribute pair, aligned with
	// Collector.Pairs. Empty when 2-D grids are disabled.
	Grids []CountState
}

// CountState is one frequency estimator's raw aggregate: per-domain-value
// support counts plus the reporter count they were accumulated over.
type CountState struct {
	Counts []float64
	N      int64
}

// addInto folds src into dst elementwise; shapes must already match.
func (c *CountState) addInto(dst *CountState) {
	for i, v := range c.Counts {
		dst.Counts[i] += v
	}
	dst.N += c.N
}

// ExportState deep-copies the accumulator's raw aggregate state. The
// caller is responsible for excluding concurrent writers (the sharded
// pipeline calls it under the shard lock).
func (a *Accumulator) ExportState() *AccState {
	depths := a.col.hier.depths
	st := &AccState{
		N:      a.n,
		Levels: make([]CountState, len(a.col.numeric)*depths),
	}
	for i, attr := range a.col.numeric {
		est := a.hier[attr]
		for d, l := range est.levels {
			st.Levels[i*depths+d] = CountState{Counts: l.Counts(), N: l.N()}
		}
	}
	if a.grids != nil {
		st.Grids = make([]CountState, len(a.grids))
		for i, g := range a.grids {
			st.Grids[i] = CountState{Counts: g.inner.Counts(), N: g.inner.N()}
		}
	}
	return st
}

// CheckState validates a state's shape and values against the
// accumulator's configuration without mutating anything: every level and
// grid must be present with the exact domain size, counts must be finite
// and non-negative (support counts are monotone sums of 0/1 indicators;
// a negative or non-finite count can only come from a corrupt or
// malicious snapshot), and reporter counts must be non-negative.
func (a *Accumulator) CheckState(st *AccState) error {
	if st == nil {
		return fmt.Errorf("rangequery: nil state")
	}
	if st.N < 0 {
		return fmt.Errorf("rangequery: negative report count %d", st.N)
	}
	depths := a.col.hier.depths
	if len(st.Levels) != len(a.col.numeric)*depths {
		return fmt.Errorf("rangequery: state has %d hierarchy levels, want %d",
			len(st.Levels), len(a.col.numeric)*depths)
	}
	for i := range st.Levels {
		want := 1 << (i%depths + 1)
		if err := checkCountState(&st.Levels[i], want); err != nil {
			return fmt.Errorf("rangequery: hierarchy level %d: %w", i, err)
		}
	}
	wantGrids := 0
	if a.grids != nil {
		wantGrids = len(a.grids)
	}
	if len(st.Grids) != wantGrids {
		return fmt.Errorf("rangequery: state has %d grids, want %d", len(st.Grids), wantGrids)
	}
	for i := range st.Grids {
		g := a.col.grid.cells
		if err := checkCountState(&st.Grids[i], g*g); err != nil {
			return fmt.Errorf("rangequery: grid %d: %w", i, err)
		}
	}
	return nil
}

func checkCountState(c *CountState, domain int) error {
	if len(c.Counts) != domain {
		return fmt.Errorf("domain %d, want %d", len(c.Counts), domain)
	}
	if c.N < 0 {
		return fmt.Errorf("negative reporter count %d", c.N)
	}
	for _, v := range c.Counts {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("count %v is negative or non-finite", v)
		}
	}
	return nil
}

// AddState validates st against the accumulator's configuration and folds
// it in. The caller is responsible for excluding concurrent writers.
func (a *Accumulator) AddState(st *AccState) error {
	if err := a.CheckState(st); err != nil {
		return err
	}
	depths := a.col.hier.depths
	for i, attr := range a.col.numeric {
		est := a.hier[attr]
		for d := range est.levels {
			s := &st.Levels[i*depths+d]
			if err := est.levels[d].AddCounts(s.Counts, s.N); err != nil {
				return fmt.Errorf("rangequery: fold level: %w", err)
			}
		}
	}
	for i := range st.Grids {
		s := &st.Grids[i]
		if err := a.grids[i].inner.AddCounts(s.Counts, s.N); err != nil {
			return fmt.Errorf("rangequery: fold grid: %w", err)
		}
	}
	a.n += st.N
	return nil
}

// Sub returns the elementwise difference cur - prev, the delta an edge
// ships after prev was already acknowledged. A nil prev returns a deep
// copy of cur. Shapes must match (both built from the same collector
// configuration).
func (cur *AccState) Sub(prev *AccState) (*AccState, error) {
	if prev == nil {
		return cur.Clone(), nil
	}
	if len(cur.Levels) != len(prev.Levels) || len(cur.Grids) != len(prev.Grids) {
		return nil, fmt.Errorf("rangequery: subtracting states of different shapes")
	}
	out := &AccState{
		N:      cur.N - prev.N,
		Levels: make([]CountState, len(cur.Levels)),
		Grids:  make([]CountState, len(cur.Grids)),
	}
	var err error
	for i := range cur.Levels {
		if out.Levels[i], err = subCountState(&cur.Levels[i], &prev.Levels[i]); err != nil {
			return nil, err
		}
	}
	for i := range cur.Grids {
		if out.Grids[i], err = subCountState(&cur.Grids[i], &prev.Grids[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func subCountState(cur, prev *CountState) (CountState, error) {
	if len(cur.Counts) != len(prev.Counts) {
		return CountState{}, fmt.Errorf("rangequery: subtracting counts of different domains")
	}
	out := CountState{Counts: make([]float64, len(cur.Counts)), N: cur.N - prev.N}
	for i, v := range cur.Counts {
		out.Counts[i] = v - prev.Counts[i]
	}
	return out, nil
}

// Add folds o into the state elementwise; shapes must match.
func (st *AccState) Add(o *AccState) error {
	if o == nil {
		return nil
	}
	if len(st.Levels) != len(o.Levels) || len(st.Grids) != len(o.Grids) {
		return fmt.Errorf("rangequery: adding states of different shapes")
	}
	for i := range o.Levels {
		if len(st.Levels[i].Counts) != len(o.Levels[i].Counts) {
			return fmt.Errorf("rangequery: adding counts of different domains")
		}
		o.Levels[i].addInto(&st.Levels[i])
	}
	for i := range o.Grids {
		if len(st.Grids[i].Counts) != len(o.Grids[i].Counts) {
			return fmt.Errorf("rangequery: adding counts of different domains")
		}
		o.Grids[i].addInto(&st.Grids[i])
	}
	st.N += o.N
	return nil
}

// Clone deep-copies the state.
func (st *AccState) Clone() *AccState {
	out := &AccState{
		N:      st.N,
		Levels: make([]CountState, len(st.Levels)),
		Grids:  make([]CountState, len(st.Grids)),
	}
	for i := range st.Levels {
		out.Levels[i] = cloneCountState(&st.Levels[i])
	}
	for i := range st.Grids {
		out.Grids[i] = cloneCountState(&st.Grids[i])
	}
	return out
}

func cloneCountState(c *CountState) CountState {
	counts := make([]float64, len(c.Counts))
	copy(counts, c.Counts)
	return CountState{Counts: counts, N: c.N}
}
