package rangequery

import (
	"testing"

	"ldp/internal/schema"
)

func twoNumSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
		schema.Attribute{Name: "state", Kind: schema.Categorical, Cardinality: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDiscretizerValidation(t *testing.T) {
	s := twoNumSchema(t)
	for _, bad := range []int{0, 1, 3, 12, -8} {
		if _, err := NewDiscretizer(s, bad); err == nil {
			t.Errorf("buckets=%d: want error for non-power-of-two", bad)
		}
	}
	if _, err := NewDiscretizer(s, 64); err != nil {
		t.Fatalf("buckets=64: %v", err)
	}
}

func TestDiscretizerSchema(t *testing.T) {
	d, err := NewDiscretizer(twoNumSchema(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Schema()
	if g.Dim() != 3 {
		t.Fatalf("derived schema has %d attrs, want 3", g.Dim())
	}
	for i, a := range g.Attrs {
		if a.Kind != schema.Categorical {
			t.Errorf("derived attr %d is %v, want categorical", i, a.Kind)
		}
	}
	if got := d.Cardinality(0); got != 16 {
		t.Errorf("numeric attr cardinality = %d, want 16", got)
	}
	if got := d.Cardinality(2); got != 5 {
		t.Errorf("categorical attr cardinality = %d, want 5 (pass-through)", got)
	}
}

func TestBucketOfCoversDomain(t *testing.T) {
	d, err := NewDiscretizer(twoNumSchema(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {-0.75001, 0}, {-0.75, 1}, {0, 4}, {0.99, 7}, {1, 7},
		{-2, 0}, {2, 7}, // clamped
	}
	for _, c := range cases {
		if got := d.BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket intervals tile [-1, 1] and agree with BucketOf.
	for b := 0; b < 8; b++ {
		lo, hi := d.Interval(b)
		mid := (lo + hi) / 2
		if got := d.BucketOf(mid); got != b {
			t.Errorf("BucketOf(midpoint of bucket %d) = %d", b, got)
		}
	}
}

func TestDiscretizerValue(t *testing.T) {
	s := twoNumSchema(t)
	d, err := NewDiscretizer(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	tp := schema.NewTuple(s)
	tp.Num[0] = 0.5
	tp.Cat[2] = 3
	if got := d.Value(0, tp); got != d.BucketOf(0.5) {
		t.Errorf("Value(numeric) = %d, want bucket of 0.5", got)
	}
	if got := d.Value(2, tp); got != 3 {
		t.Errorf("Value(categorical) = %d, want 3", got)
	}
}

func TestSpan(t *testing.T) {
	d, err := NewDiscretizer(twoNumSchema(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if b0, b1, ok := d.Span(-1, 1); !ok || b0 != 0 || b1 != 7 {
		t.Errorf("Span(-1,1) = (%d,%d,%v), want (0,7,true)", b0, b1, ok)
	}
	if b0, b1, ok := d.Span(-0.1, 0.1); !ok || b0 != 3 || b1 != 4 {
		t.Errorf("Span(-0.1,0.1) = (%d,%d,%v), want (3,4,true)", b0, b1, ok)
	}
	if _, _, ok := d.Span(0.5, -0.5); ok {
		t.Error("Span with hi < lo should report !ok")
	}
}
