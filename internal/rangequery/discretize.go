package rangequery

import (
	"fmt"
	"math/bits"

	"ldp/internal/mech"
	"ldp/internal/schema"
)

// Discretizer maps the numeric attributes of a schema onto B-bucket
// categorical domains so that range queries reduce to frequency queries
// over bucket indices. Bucket b of a numeric attribute covers the
// equal-width interval [-1 + 2b/B, -1 + 2(b+1)/B), with the last bucket
// closed at +1.
//
// Categorical attributes pass through with their natural cardinality; the
// derived all-categorical schema (Schema) is the domain contract the
// range-query collector, wire format and estimators agree on, mirroring
// the role schema.Schema plays for the mean/frequency pipeline.
type Discretizer struct {
	src     *schema.Schema
	buckets int
	grid    *schema.Schema
}

// NewDiscretizer derives the bucketized view of s. buckets must be a power
// of two >= 2 (the hierarchy is dyadic) and is the domain size every
// numeric attribute is mapped onto.
func NewDiscretizer(s *schema.Schema, buckets int) (*Discretizer, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if buckets < 2 || bits.OnesCount(uint(buckets)) != 1 {
		return nil, fmt.Errorf("rangequery: buckets must be a power of two >= 2, got %d", buckets)
	}
	attrs := make([]schema.Attribute, s.Dim())
	for i, a := range s.Attrs {
		attrs[i] = a
		if a.Kind == schema.Numeric {
			attrs[i] = schema.Attribute{Name: a.Name, Kind: schema.Categorical, Cardinality: buckets}
		}
	}
	grid, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	return &Discretizer{src: s, buckets: buckets, grid: grid}, nil
}

// Source returns the original schema.
func (d *Discretizer) Source() *schema.Schema { return d.src }

// Schema returns the derived schema in which every attribute is
// categorical (numeric attributes become Cardinality-B domains).
func (d *Discretizer) Schema() *schema.Schema { return d.grid }

// Buckets returns the bucket count B used for numeric attributes.
func (d *Discretizer) Buckets() int { return d.buckets }

// Cardinality returns the discretized domain size of attribute attr.
func (d *Discretizer) Cardinality(attr int) int {
	return d.grid.Attrs[attr].Cardinality
}

// BucketOf maps a numeric value in [-1, 1] (clamped) to its bucket index.
func (d *Discretizer) BucketOf(v float64) int {
	return bucketOf(v, d.buckets)
}

// Value returns the discretized value of attribute attr in tuple t: the
// bucket index for numeric attributes, the categorical value itself
// otherwise.
func (d *Discretizer) Value(attr int, t schema.Tuple) int {
	if d.src.Attrs[attr].Kind == schema.Numeric {
		return d.BucketOf(t.Num[attr])
	}
	return t.Cat[attr]
}

// Interval returns the numeric interval [lo, hi) covered by bucket b.
func (d *Discretizer) Interval(b int) (lo, hi float64) {
	w := 2 / float64(d.buckets)
	lo = -1 + float64(b)*w
	return lo, lo + w
}

// Span maps a numeric query range [lo, hi] onto the inclusive bucket span
// [b0, b1] of buckets whose intervals it intersects; ok is false when the
// range is empty after clamping to [-1, 1]. Query endpoints are rounded
// outward to bucket boundaries, so the answered range can be wider than
// the asked one by at most one bucket width per side (the O(1/B)
// discretization bias the bucket count controls).
func (d *Discretizer) Span(lo, hi float64) (b0, b1 int, ok bool) {
	lo, hi = mech.Clamp1(lo), mech.Clamp1(hi)
	if hi < lo {
		return 0, 0, false
	}
	return d.BucketOf(lo), d.BucketOf(hi), true
}

func bucketOf(v float64, buckets int) int {
	v = mech.Clamp1(v)
	b := int((v + 1) / 2 * float64(buckets))
	if b >= buckets {
		b = buckets - 1
	}
	return b
}
