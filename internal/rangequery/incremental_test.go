package rangequery

import (
	"testing"

	"ldp/internal/rng"
	"ldp/internal/schema"
)

// TestLevelSlotMapping pins the flat slot space the pipeline's dirty
// bitsets are keyed by: attribute-major level slots matching the
// AccState.Levels wire layout, grid slots by pair index, and -1 for
// every invalid (attribute, depth) combination.
func TestLevelSlotMapping(t *testing.T) {
	col := viewTestCollector(t)
	depths := col.Hierarchy().Depths()
	if got := col.LevelSlots(); got != 2*depths {
		t.Fatalf("LevelSlots = %d, want %d", got, 2*depths)
	}
	if got := col.GridSlots(); got != 1 {
		t.Fatalf("GridSlots = %d, want 1", got)
	}
	for pos, attr := range []int{0, 1} {
		for d := 1; d <= depths; d++ {
			if got, want := col.LevelIndex(attr, d), pos*depths+d-1; got != want {
				t.Errorf("LevelIndex(%d, %d) = %d, want %d", attr, d, got, want)
			}
		}
	}
	for _, bad := range [][2]int{{2, 1}, {-1, 1}, {3, 1}, {0, 0}, {0, depths + 1}} {
		if got := col.LevelIndex(bad[0], bad[1]); got != -1 {
			t.Errorf("LevelIndex(%d, %d) = %d, want -1", bad[0], bad[1], got)
		}
	}

	// Grids disabled: no grid slots, level slots unchanged.
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := NewCollector(s, 1, Config{Buckets: 16, GridFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ng.GridSlots() != 0 {
		t.Fatalf("GridSlots with grids disabled = %d, want 0", ng.GridSlots())
	}
	if ng.LevelSlots() != 2*ng.Hierarchy().Depths() {
		t.Fatal("LevelSlots changed when grids were disabled")
	}
}

// foldTracked folds n randomized reports into acc and records which
// level/grid slots they touched — the same event-driven marking the
// pipeline's shards do.
func foldTracked(t *testing.T, acc *Accumulator, r *rng.Rand, n int, dLevel, dGrid map[int]bool) {
	t.Helper()
	col := acc.Collector()
	tup := schema.NewTuple(col.Schema())
	for i := 0; i < n; i++ {
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -0.5, 1)
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Add(rep); err != nil {
			t.Fatal(err)
		}
		if rep.Kind == KindHier {
			dLevel[col.LevelIndex(rep.Attr, rep.Depth)] = true
		} else {
			dGrid[rep.Pair] = true
		}
	}
}

// assertAccCountsIdentical compares two accumulators' raw support and
// reporter counts bit for bit across every level and grid slot.
func assertAccCountsIdentical(t *testing.T, got, want *Accumulator) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N: got %d, want %d", got.N(), want.N())
	}
	depths := want.col.hier.depths
	for _, attr := range want.col.numeric {
		for d := 0; d < depths; d++ {
			ge, we := got.hier[attr].levels[d], want.hier[attr].levels[d]
			if ge.N() != we.N() {
				t.Fatalf("attr %d depth %d: n %d != %d", attr, d+1, ge.N(), we.N())
			}
			gc, wc := ge.Counts(), we.Counts()
			for i := range wc {
				if gc[i] != wc[i] {
					t.Fatalf("attr %d depth %d count[%d]: %v != %v", attr, d+1, i, gc[i], wc[i])
				}
			}
		}
	}
	for p := range want.grids {
		ge, we := got.grids[p].inner, want.grids[p].inner
		if ge.N() != we.N() {
			t.Fatalf("grid %d: n %d != %d", p, ge.N(), we.N())
		}
		gc, wc := ge.Counts(), we.Counts()
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("grid %d count[%d]: %v != %v", p, i, gc[i], wc[i])
			}
		}
	}
}

// TestSyncDeltaMatchesDirect drives the shard-side sync primitives the
// way the pipeline does — two live shards, per-shard baselines, one
// aggregate, multiple rounds syncing only the slots each round's reports
// touched — and checks the aggregate stays bit-identical to an
// accumulator that folded every report directly.
func TestSyncDeltaMatchesDirect(t *testing.T) {
	col := viewTestCollector(t)
	shards := []*Accumulator{NewAccumulator(col), NewAccumulator(col)}
	bases := []*Accumulator{NewAccumulator(col), NewAccumulator(col)}
	agg := NewAccumulator(col)

	r := rng.New(17)
	for round := 0; round < 4; round++ {
		dirtyL := map[int]bool{}
		dirtyG := map[int]bool{}
		// Uneven folds: shard 0 gets reports every round, shard 1 only on
		// even rounds, so some syncs see an untouched shard.
		for si, sh := range shards {
			if si == 1 && round%2 == 1 {
				continue
			}
			perL, perG := map[int]bool{}, map[int]bool{}
			foldTracked(t, sh, r, 50+25*round, perL, perG)
			for li := range perL {
				dirtyL[li] = true
			}
			for p := range perG {
				dirtyG[p] = true
			}
		}
		// Sync only the dirty slots, every shard (clean shards contribute
		// zero deltas, which SyncDelta skips slot by slot).
		for si, sh := range shards {
			for li := range dirtyL {
				sh.SyncDeltaLevel(li, bases[si], agg)
			}
			for p := range dirtyG {
				sh.SyncDeltaGrid(p, bases[si], agg)
			}
			sh.SyncDeltaN(bases[si], agg)
		}
		// The reference is a direct merge of the live shards.
		ref := NewAccumulator(col)
		for _, sh := range shards {
			ref.Merge(sh)
		}
		assertAccCountsIdentical(t, agg, ref)
		// Baselines have caught up to the live shards.
		for si := range shards {
			assertAccCountsIdentical(t, bases[si], shards[si])
		}
	}
}

// TestRebuildViewMatchesView checks the delta-proportional view rebuild:
// given an accurate dirty predicate, RebuildView must answer every query
// bit-exactly like a full View, alias the previous view's slices for
// every clean slot, and recompute only the dirty ones.
func TestRebuildViewMatchesView(t *testing.T) {
	col := viewTestCollector(t)
	acc := NewAccumulator(col)
	r := rng.New(23)
	dL, dG := map[int]bool{}, map[int]bool{}
	foldTracked(t, acc, r, 3000, dL, dG)
	prev := acc.View()

	// A fresh delta touching only attribute 0's hierarchy: perturb tuples
	// routed explicitly through attr-0 levels by filtering on report kind.
	dL, dG = map[int]bool{}, map[int]bool{}
	tup := schema.NewTuple(col.Schema())
	added := 0
	for added < 40 {
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -0.5, 1)
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind != KindHier || rep.Attr != 0 {
			continue
		}
		if err := acc.Add(rep); err != nil {
			t.Fatal(err)
		}
		dL[col.LevelIndex(rep.Attr, rep.Depth)] = true
		added++
	}

	got := acc.RebuildView(prev, func(li int) bool { return dL[li] }, func(p int) bool { return dG[p] })
	want := acc.View()
	if got.N() != want.N() {
		t.Fatalf("N: %d != %d", got.N(), want.N())
	}
	depths := col.Hierarchy().Depths()
	for _, attr := range []int{0, 1} {
		gh, wh := got.Hier(attr), want.Hier(attr)
		for d := 0; d < depths; d++ {
			for i := range wh.levels[d] {
				if gh.levels[d][i] != wh.levels[d][i] {
					t.Fatalf("attr %d depth %d[%d]: %v != %v", attr, d+1, i, gh.levels[d][i], wh.levels[d][i])
				}
			}
		}
	}
	// Attribute 1 saw no reports: its whole HierView is the previous one.
	if got.Hier(1) != prev.Hier(1) {
		t.Error("clean attribute's HierView was rebuilt, not aliased")
	}
	// Attribute 0 was rebuilt, but its clean depths alias prev's slices.
	if got.Hier(0) == prev.Hier(0) {
		t.Error("dirty attribute's HierView was aliased, not rebuilt")
	}
	for d := 0; d < depths; d++ {
		aliased := &got.Hier(0).levels[d][0] == &prev.Hier(0).levels[d][0]
		if dL[col.LevelIndex(0, d+1)] == aliased {
			t.Errorf("attr 0 depth %d: aliased=%v, dirty=%v", d+1, aliased, !aliased)
		}
	}
	// The grid saw no reports either: aliased, and still bit-exact.
	if got.GridFor(0) != prev.GridFor(0) {
		t.Error("clean grid was rebuilt, not aliased")
	}
	gg, wg := got.GridFor(0), want.GridFor(0)
	for i := range wg.joint {
		if gg.joint[i] != wg.joint[i] {
			t.Fatalf("grid joint[%d]: %v != %v", i, gg.joint[i], wg.joint[i])
		}
	}

	// Nil prev falls back to a full view.
	full := acc.RebuildView(nil, func(int) bool { return false }, func(int) bool { return false })
	if full.N() != want.N() {
		t.Fatal("RebuildView(nil, ...) did not build a full view")
	}
}

// TestViewWithMatchesView pins the parallel derivation: ViewWith fans the
// per-attribute debias and per-grid Norm-Sub work across workers but each
// slot's computation is independent and deterministic, so the result must
// be bit-identical to the serial View at any worker count.
func TestViewWithMatchesView(t *testing.T) {
	col := viewTestCollector(t)
	acc := NewAccumulator(col)
	r := rng.New(31)
	dL, dG := map[int]bool{}, map[int]bool{}
	foldTracked(t, acc, r, 4000, dL, dG)

	want := acc.View()
	for _, workers := range []int{1, 2, 4, 16} {
		got := acc.ViewWith(workers)
		if got.N() != want.N() {
			t.Fatalf("workers=%d: N %d != %d", workers, got.N(), want.N())
		}
		depths := col.Hierarchy().Depths()
		for _, attr := range []int{0, 1} {
			for d := 0; d < depths; d++ {
				gl, wl := got.Hier(attr).levels[d], want.Hier(attr).levels[d]
				for i := range wl {
					if gl[i] != wl[i] {
						t.Fatalf("workers=%d attr %d depth %d[%d]: %v != %v", workers, attr, d+1, i, gl[i], wl[i])
					}
				}
			}
		}
		gg, wg := got.GridFor(0), want.GridFor(0)
		for i := range wg.joint {
			if gg.joint[i] != wg.joint[i] {
				t.Fatalf("workers=%d grid joint[%d]: %v != %v", workers, i, gg.joint[i], wg.joint[i])
			}
		}
	}
}
