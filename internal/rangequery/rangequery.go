// Package rangequery answers 1-D and 2-D range queries over numeric
// attributes under eps-local differential privacy, the workload of Yang et
// al., "Answering Multi-Dimensional Range Queries under Local Differential
// Privacy" (VLDB 2021), built on the repository's frequency oracles.
//
// Each numeric attribute is discretized onto a B-bucket domain
// (Discretizer). One-dimensional ranges are served by a hierarchical
// interval oracle (HierCollector/HierEstimator): users report a dyadic
// interval at a uniformly sampled tree depth and the aggregator composes
// any range from the O(log B) nodes of its canonical cover. Two-
// dimensional ranges are served by uniform g x g grids over attribute
// pairs (GridCollector/GridEstimator) with Norm-Sub consistency
// post-processing shared with package hist.
//
// The top-level Collector implements the user side end to end: every user
// is routed to exactly one sub-task — a (attribute, depth) interval report
// or an attribute-pair cell report — so each report consumes the full
// budget eps, in the attribute-sampling spirit of the paper's Algorithm 4
// and the RS+FD line. Aggregator is the matching server side; it is safe
// for concurrent use.
package rangequery

import (
	"fmt"
	"sync"

	"ldp/internal/freq"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// Config tunes the range-query collector. The zero value selects the
// defaults documented on each field.
type Config struct {
	// Buckets is the leaf domain size B of the 1-D hierarchies; it must
	// be a power of two >= 2. 0 means 256.
	Buckets int
	// GridCells is the per-axis resolution g of the 2-D grids. 0 means 8.
	GridCells int
	// Oracle builds the frequency oracle used by every sub-task; nil
	// means OUE.
	Oracle freq.Factory
	// GridFraction is the probability a user is routed to a 2-D grid
	// task rather than a 1-D hierarchy task. 0 means a 50/50 split when
	// the schema has at least two numeric attributes; a negative value
	// disables 2-D grids entirely.
	GridFraction float64
}

// ReportKind says which sub-task a range report answers.
type ReportKind uint8

const (
	// KindHier is a 1-D hierarchical interval report.
	KindHier ReportKind = iota
	// KindGrid is a 2-D grid cell report.
	KindGrid
)

// Report is one user's randomized range-query submission: a frequency-
// oracle response about either a dyadic interval of one attribute (Kind
// KindHier; Attr and Depth are set) or a grid cell of one attribute pair
// (Kind KindGrid; Pair indexes Collector.Pairs()).
type Report struct {
	Kind  ReportKind
	Attr  int
	Depth int
	Pair  int
	Resp  freq.Response
}

// Collector randomizes user tuples into range reports. It is safe for
// concurrent use; all mutable state lives in the caller-supplied PRNG.
type Collector struct {
	disc    *Discretizer
	eps     float64
	numeric []int    // schema indices of numeric attributes
	pairs   [][2]int // numeric attribute pairs (i < j), schema indices
	hier    *HierCollector
	grid    *GridCollector // nil when grids are disabled
	pGrid   float64
}

// NewCollector builds the range-query collector for the numeric attributes
// of schema s at total budget eps.
func NewCollector(s *schema.Schema, eps float64, cfg Config) (*Collector, error) {
	if cfg.Buckets == 0 {
		cfg.Buckets = 256
	}
	if cfg.GridCells == 0 {
		cfg.GridCells = 8
	}
	disc, err := NewDiscretizer(s, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	numeric := s.NumericIdx()
	if len(numeric) == 0 {
		return nil, fmt.Errorf("rangequery: schema has no numeric attributes")
	}
	var pairs [][2]int
	for i := 0; i < len(numeric); i++ {
		for j := i + 1; j < len(numeric); j++ {
			pairs = append(pairs, [2]int{numeric[i], numeric[j]})
		}
	}
	pGrid := cfg.GridFraction
	switch {
	case pGrid < 0, len(pairs) == 0:
		pGrid = 0
	case pGrid == 0:
		pGrid = 0.5
	case pGrid > 1:
		return nil, fmt.Errorf("rangequery: GridFraction %v > 1", cfg.GridFraction)
	}
	hier, err := NewHierCollector(eps, cfg.Buckets, cfg.Oracle)
	if err != nil {
		return nil, err
	}
	c := &Collector{disc: disc, eps: eps, numeric: numeric, pairs: pairs, hier: hier, pGrid: pGrid}
	if pGrid > 0 {
		c.grid, err = NewGridCollector(eps, cfg.GridCells, cfg.Oracle)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Schema returns the source schema.
func (c *Collector) Schema() *schema.Schema { return c.disc.src }

// Discretizer returns the bucketized view of the schema.
func (c *Collector) Discretizer() *Discretizer { return c.disc }

// Epsilon returns the total per-user budget.
func (c *Collector) Epsilon() float64 { return c.eps }

// Hierarchy returns the shared 1-D interval collector.
func (c *Collector) Hierarchy() *HierCollector { return c.hier }

// Grid returns the shared 2-D grid collector, or nil when grids are
// disabled (GridFraction < 0 or fewer than two numeric attributes).
func (c *Collector) Grid() *GridCollector { return c.grid }

// Pairs returns the attribute pairs served by 2-D grids, as schema index
// pairs (i < j) aligned with Report.Pair.
func (c *Collector) Pairs() [][2]int { return c.pairs }

// GridFraction returns the probability a user is routed to a grid task.
func (c *Collector) GridFraction() float64 { return c.pGrid }

// Perturb routes one user to a uniformly chosen sub-task and randomizes
// their tuple into a range report under eps-LDP.
func (c *Collector) Perturb(t schema.Tuple, r *rng.Rand) (Report, error) {
	if err := t.Check(c.disc.src); err != nil {
		return Report{}, err
	}
	if c.grid != nil && rng.Bernoulli(r, c.pGrid) {
		p := r.IntN(len(c.pairs))
		i, j := c.pairs[p][0], c.pairs[p][1]
		return Report{
			Kind: KindGrid,
			Pair: p,
			Resp: c.grid.Perturb(t.Num[i], t.Num[j], r),
		}, nil
	}
	attr := c.numeric[r.IntN(len(c.numeric))]
	hr := c.hier.Perturb(c.disc.BucketOf(t.Num[attr]), r)
	return Report{Kind: KindHier, Attr: attr, Depth: hr.Depth, Resp: hr.Resp}, nil
}

// Aggregator is the server-side estimator for range reports. It is safe
// for concurrent use.
type Aggregator struct {
	col *Collector

	mu    sync.Mutex
	n     int64
	hier  map[int]*HierEstimator // keyed by schema attribute index
	grids []*GridEstimator       // aligned with col.pairs; nil when disabled
}

// NewAggregator creates an aggregator matching the collector's
// configuration.
func NewAggregator(c *Collector) *Aggregator {
	a := &Aggregator{col: c, hier: make(map[int]*HierEstimator, len(c.numeric))}
	for _, attr := range c.numeric {
		a.hier[attr] = NewHierEstimator(c.hier)
	}
	if c.grid != nil {
		a.grids = make([]*GridEstimator, len(c.pairs))
		for i := range a.grids {
			a.grids[i] = NewGridEstimator(c.grid)
		}
	}
	return a
}

// Collector returns the collector configuration this aggregator matches.
func (a *Aggregator) Collector() *Collector { return a.col }

// Schema returns the source schema.
func (a *Aggregator) Schema() *schema.Schema { return a.col.disc.src }

// Validate checks a report against the aggregator's configuration without
// mutating any state. It reads only configuration that is immutable after
// construction, so it needs no lock and is safe to call concurrently with
// Add (batch ingest uses it to validate a whole batch before folding any
// of it in).
func (a *Aggregator) Validate(rep Report) error {
	switch rep.Kind {
	case KindHier:
		est, ok := a.hier[rep.Attr]
		if !ok {
			return fmt.Errorf("rangequery: report for non-numeric or out-of-range attribute %d", rep.Attr)
		}
		return est.Check(HierReport{Depth: rep.Depth, Resp: rep.Resp})
	case KindGrid:
		if a.grids == nil {
			return fmt.Errorf("rangequery: grid report but grids are disabled")
		}
		if rep.Pair < 0 || rep.Pair >= len(a.grids) {
			return fmt.Errorf("rangequery: report pair %d out of range [0,%d)", rep.Pair, len(a.grids))
		}
		return a.grids[rep.Pair].Check(rep.Resp)
	default:
		return fmt.Errorf("rangequery: unknown report kind %d", rep.Kind)
	}
}

// Add folds one report into the aggregate state.
func (a *Aggregator) Add(rep Report) error {
	if err := a.Validate(rep); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch rep.Kind {
	case KindHier:
		if err := a.hier[rep.Attr].Add(HierReport{Depth: rep.Depth, Resp: rep.Resp}); err != nil {
			return err
		}
	case KindGrid:
		if err := a.grids[rep.Pair].Add(rep.Resp); err != nil {
			return err
		}
	}
	a.n++
	return nil
}

// N returns the number of reports received.
func (a *Aggregator) N() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Merge combines another aggregator built from the same collector. The
// source is snapshotted under its own lock before this aggregator locks,
// so concurrent cross-merges (and self-merges) cannot deadlock.
func (a *Aggregator) Merge(o *Aggregator) {
	o.mu.Lock()
	on := o.n
	hierCopies := make(map[int]*HierEstimator, len(o.hier))
	for attr, est := range o.hier {
		hierCopies[attr] = est.clone()
	}
	var gridCopies []*GridEstimator
	if o.grids != nil {
		gridCopies = make([]*GridEstimator, len(o.grids))
		for i, g := range o.grids {
			gridCopies[i] = g.clone()
		}
	}
	o.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += on
	for attr, est := range a.hier {
		est.Merge(hierCopies[attr])
	}
	for i, g := range a.grids {
		g.Merge(gridCopies[i])
	}
}

// Range1D estimates the fraction of users whose numeric attribute attr
// (schema index) lies in [lo, hi], from that attribute's hierarchical
// interval estimates. Query endpoints are rounded outward to bucket
// boundaries (see Discretizer.Span).
func (a *Aggregator) Range1D(attr int, lo, hi float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	est, ok := a.hier[attr]
	if !ok {
		return 0, fmt.Errorf("rangequery: attribute %d is not a numeric attribute of the schema", attr)
	}
	b0, b1, ok := a.col.disc.Span(lo, hi)
	if !ok {
		return 0, nil
	}
	return est.SpanMass(b0, b1)
}

// Range2D estimates the fraction of users with attribute ai in [alo, ahi]
// AND attribute aj in [blo, bhi], from the pair's consistent 2-D grid.
// The attribute order is free: (ai, aj) and (aj, ai) answer the same
// query.
func (a *Aggregator) Range2D(ai, aj int, alo, ahi, blo, bhi float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.grids == nil {
		return 0, fmt.Errorf("rangequery: 2-D grids are disabled in this collector")
	}
	if aj < ai {
		ai, aj = aj, ai
		alo, ahi, blo, bhi = blo, bhi, alo, ahi
	}
	for p, pair := range a.col.pairs {
		if pair[0] == ai && pair[1] == aj {
			return a.grids[p].RectMass(alo, ahi, blo, bhi), nil
		}
	}
	return 0, fmt.Errorf("rangequery: no grid for attribute pair (%d,%d)", ai, aj)
}

// Hier returns the hierarchical estimator of numeric attribute attr
// (schema index), or nil if the attribute has none.
func (a *Aggregator) Hier(attr int) *HierEstimator {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hier[attr]
}

// GridFor returns the grid estimator of pair index p (see
// Collector.Pairs), or nil when grids are disabled.
func (a *Aggregator) GridFor(p int) *GridEstimator {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.grids == nil || p < 0 || p >= len(a.grids) {
		return nil
	}
	return a.grids[p]
}
