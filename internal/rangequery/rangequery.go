// Package rangequery answers 1-D and 2-D range queries over numeric
// attributes under eps-local differential privacy, the workload of Yang et
// al., "Answering Multi-Dimensional Range Queries under Local Differential
// Privacy" (VLDB 2021), built on the repository's frequency oracles.
//
// Each numeric attribute is discretized onto a B-bucket domain
// (Discretizer). One-dimensional ranges are served by a hierarchical
// interval oracle (HierCollector/HierEstimator): users report a dyadic
// interval at a uniformly sampled tree depth and the aggregator composes
// any range from the O(log B) nodes of its canonical cover. Two-
// dimensional ranges are served by uniform g x g grids over attribute
// pairs (GridCollector/GridEstimator) with Norm-Sub consistency
// post-processing shared with package hist.
//
// The top-level Collector implements the user side end to end: every user
// is routed to exactly one sub-task — a (attribute, depth) interval report
// or an attribute-pair cell report — so each report consumes the full
// budget eps, in the attribute-sampling spirit of the paper's Algorithm 4
// and the RS+FD line. Aggregator is the matching server side; it is safe
// for concurrent use.
package rangequery

import (
	"fmt"
	"sync"

	"ldp/internal/freq"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// Config tunes the range-query collector. The zero value selects the
// defaults documented on each field.
type Config struct {
	// Buckets is the leaf domain size B of the 1-D hierarchies; it must
	// be a power of two >= 2. 0 means 256.
	Buckets int
	// GridCells is the per-axis resolution g of the 2-D grids. 0 means 8.
	GridCells int
	// Oracle builds the frequency oracle used by every sub-task; nil
	// means OUE.
	Oracle freq.Factory
	// GridFraction is the probability a user is routed to a 2-D grid
	// task rather than a 1-D hierarchy task. 0 means a 50/50 split when
	// the schema has at least two numeric attributes; a negative value
	// disables 2-D grids entirely.
	GridFraction float64
}

// ReportKind says which sub-task a range report answers.
type ReportKind uint8

const (
	// KindHier is a 1-D hierarchical interval report.
	KindHier ReportKind = iota
	// KindGrid is a 2-D grid cell report.
	KindGrid
)

// Report is one user's randomized range-query submission: a frequency-
// oracle response about either a dyadic interval of one attribute (Kind
// KindHier; Attr and Depth are set) or a grid cell of one attribute pair
// (Kind KindGrid; Pair indexes Collector.Pairs()).
type Report struct {
	Kind  ReportKind
	Attr  int
	Depth int
	Pair  int
	Resp  freq.Response
}

// Collector randomizes user tuples into range reports. It is safe for
// concurrent use; all mutable state lives in the caller-supplied PRNG.
type Collector struct {
	disc    *Discretizer
	eps     float64
	numeric []int    // schema indices of numeric attributes
	numPos  []int    // schema attr -> position in numeric (-1 for others)
	pairs   [][2]int // numeric attribute pairs (i < j), schema indices
	hier    *HierCollector
	grid    *GridCollector // nil when grids are disabled
	pGrid   float64
}

// NewCollector builds the range-query collector for the numeric attributes
// of schema s at total budget eps.
func NewCollector(s *schema.Schema, eps float64, cfg Config) (*Collector, error) {
	if cfg.Buckets == 0 {
		cfg.Buckets = 256
	}
	if cfg.GridCells == 0 {
		cfg.GridCells = 8
	}
	disc, err := NewDiscretizer(s, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	numeric := s.NumericIdx()
	if len(numeric) == 0 {
		return nil, fmt.Errorf("rangequery: schema has no numeric attributes")
	}
	var pairs [][2]int
	for i := 0; i < len(numeric); i++ {
		for j := i + 1; j < len(numeric); j++ {
			pairs = append(pairs, [2]int{numeric[i], numeric[j]})
		}
	}
	pGrid := cfg.GridFraction
	switch {
	case pGrid < 0, len(pairs) == 0:
		pGrid = 0
	case pGrid == 0:
		pGrid = 0.5
	case pGrid > 1:
		return nil, fmt.Errorf("rangequery: GridFraction %v > 1", cfg.GridFraction)
	}
	hier, err := NewHierCollector(eps, cfg.Buckets, cfg.Oracle)
	if err != nil {
		return nil, err
	}
	numPos := make([]int, s.Dim())
	for i := range numPos {
		numPos[i] = -1
	}
	for pos, attr := range numeric {
		numPos[attr] = pos
	}
	c := &Collector{disc: disc, eps: eps, numeric: numeric, numPos: numPos, pairs: pairs, hier: hier, pGrid: pGrid}
	if pGrid > 0 {
		c.grid, err = NewGridCollector(eps, cfg.GridCells, cfg.Oracle)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Schema returns the source schema.
func (c *Collector) Schema() *schema.Schema { return c.disc.src }

// Discretizer returns the bucketized view of the schema.
func (c *Collector) Discretizer() *Discretizer { return c.disc }

// Epsilon returns the total per-user budget.
func (c *Collector) Epsilon() float64 { return c.eps }

// Hierarchy returns the shared 1-D interval collector.
func (c *Collector) Hierarchy() *HierCollector { return c.hier }

// Grid returns the shared 2-D grid collector, or nil when grids are
// disabled (GridFraction < 0 or fewer than two numeric attributes).
func (c *Collector) Grid() *GridCollector { return c.grid }

// Pairs returns the attribute pairs served by 2-D grids, as schema index
// pairs (i < j) aligned with Report.Pair.
func (c *Collector) Pairs() [][2]int { return c.pairs }

// GridFraction returns the probability a user is routed to a grid task.
func (c *Collector) GridFraction() float64 { return c.pGrid }

// Perturb routes one user to a uniformly chosen sub-task and randomizes
// their tuple into a range report under eps-LDP.
func (c *Collector) Perturb(t schema.Tuple, r *rng.Rand) (Report, error) {
	if err := t.Check(c.disc.src); err != nil {
		return Report{}, err
	}
	if c.grid != nil && rng.Bernoulli(r, c.pGrid) {
		p := r.IntN(len(c.pairs))
		i, j := c.pairs[p][0], c.pairs[p][1]
		return Report{
			Kind: KindGrid,
			Pair: p,
			Resp: c.grid.Perturb(t.Num[i], t.Num[j], r),
		}, nil
	}
	attr := c.numeric[r.IntN(len(c.numeric))]
	hr := c.hier.Perturb(c.disc.BucketOf(t.Num[attr]), r)
	return Report{Kind: KindHier, Attr: attr, Depth: hr.Depth, Resp: hr.Resp}, nil
}

// Accumulator is the unlocked estimator state for range reports: the
// per-attribute hierarchies and per-pair grids of one aggregation domain.
// It is not safe for concurrent use — callers provide their own locking
// (the sharded pipeline guards one Accumulator per shard with the shard
// lock; Aggregator wraps one in a mutex for standalone use).
type Accumulator struct {
	col   *Collector
	n     int64
	hier  map[int]*HierEstimator // keyed by schema attribute index
	grids []*GridEstimator       // aligned with col.pairs; nil when disabled
}

// NewAccumulator creates unlocked estimator state matching the collector's
// configuration.
func NewAccumulator(c *Collector) *Accumulator {
	a := &Accumulator{col: c, hier: make(map[int]*HierEstimator, len(c.numeric))}
	for _, attr := range c.numeric {
		a.hier[attr] = NewHierEstimator(c.hier)
	}
	if c.grid != nil {
		a.grids = make([]*GridEstimator, len(c.pairs))
		for i := range a.grids {
			a.grids[i] = NewGridEstimator(c.grid)
		}
	}
	return a
}

// Collector returns the collector configuration this accumulator matches.
func (a *Accumulator) Collector() *Collector { return a.col }

// N returns the number of reports folded in.
func (a *Accumulator) N() int64 { return a.n }

// Validate checks a report against the accumulator's configuration without
// mutating any state. It reads only configuration that is immutable after
// construction, so it is safe to call concurrently with folds on other
// accumulators of the same collector (batch ingest validates a whole batch
// before folding any of it in).
func (a *Accumulator) Validate(rep Report) error {
	switch rep.Kind {
	case KindHier:
		est, ok := a.hier[rep.Attr]
		if !ok {
			return fmt.Errorf("rangequery: report for non-numeric or out-of-range attribute %d", rep.Attr)
		}
		return est.Check(HierReport{Depth: rep.Depth, Resp: rep.Resp})
	case KindGrid:
		if a.grids == nil {
			return fmt.Errorf("rangequery: grid report but grids are disabled")
		}
		if rep.Pair < 0 || rep.Pair >= len(a.grids) {
			return fmt.Errorf("rangequery: report pair %d out of range [0,%d)", rep.Pair, len(a.grids))
		}
		return a.grids[rep.Pair].Check(rep.Resp)
	default:
		return fmt.Errorf("rangequery: unknown report kind %d", rep.Kind)
	}
}

// Add validates and folds one report in.
func (a *Accumulator) Add(rep Report) error {
	if err := a.Validate(rep); err != nil {
		return err
	}
	a.FoldValidated(rep)
	return nil
}

// FoldValidated folds one report that has already passed Validate,
// without re-checking it: the batch ingest path validates lock-free up
// front and calls this inside the shard critical section.
func (a *Accumulator) FoldValidated(rep Report) {
	switch rep.Kind {
	case KindHier:
		a.hier[rep.Attr].levels[rep.Depth-1].Add(rep.Resp)
	case KindGrid:
		a.grids[rep.Pair].inner.Add(rep.Resp)
	}
	a.n++
}

// FoldBatch validates every report, then folds them all in: the batch
// either folds completely or (on the first invalid report) not at all.
func (a *Accumulator) FoldBatch(reps []Report) error {
	for i, rep := range reps {
		if err := a.Validate(rep); err != nil {
			return fmt.Errorf("rangequery: report %d: %w", i, err)
		}
	}
	for _, rep := range reps {
		a.FoldValidated(rep)
	}
	return nil
}

// Merge folds another accumulator built from the same collector into this
// one. The source is only read; the caller is responsible for excluding
// concurrent writers on both sides.
func (a *Accumulator) Merge(o *Accumulator) {
	a.n += o.n
	for attr, est := range a.hier {
		est.Merge(o.hier[attr])
	}
	for i, g := range a.grids {
		g.Merge(o.grids[i])
	}
}

// clone deep-copies the accumulator (Aggregator.Merge snapshots sources
// with it so cross-merges cannot deadlock).
func (a *Accumulator) clone() *Accumulator {
	c := &Accumulator{col: a.col, n: a.n, hier: make(map[int]*HierEstimator, len(a.hier))}
	for attr, est := range a.hier {
		c.hier[attr] = est.clone()
	}
	if a.grids != nil {
		c.grids = make([]*GridEstimator, len(a.grids))
		for i, g := range a.grids {
			c.grids[i] = g.clone()
		}
	}
	return c
}

// Range1D estimates the fraction of users whose numeric attribute attr
// (schema index) lies in [lo, hi], from that attribute's hierarchical
// interval estimates. Query endpoints are rounded outward to bucket
// boundaries (see Discretizer.Span).
func (a *Accumulator) Range1D(attr int, lo, hi float64) (float64, error) {
	est, ok := a.hier[attr]
	if !ok {
		return 0, fmt.Errorf("rangequery: attribute %d is not a numeric attribute of the schema", attr)
	}
	b0, b1, ok := a.col.disc.Span(lo, hi)
	if !ok {
		return 0, nil
	}
	return est.SpanMass(b0, b1)
}

// Range2D estimates the fraction of users with attribute ai in [alo, ahi]
// AND attribute aj in [blo, bhi], from the pair's consistent 2-D grid.
// The attribute order is free: (ai, aj) and (aj, ai) answer the same
// query.
func (a *Accumulator) Range2D(ai, aj int, alo, ahi, blo, bhi float64) (float64, error) {
	if a.grids == nil {
		return 0, fmt.Errorf("rangequery: 2-D grids are disabled in this collector")
	}
	if aj < ai {
		ai, aj = aj, ai
		alo, ahi, blo, bhi = blo, bhi, alo, ahi
	}
	for p, pair := range a.col.pairs {
		if pair[0] == ai && pair[1] == aj {
			return a.grids[p].RectMass(alo, ahi, blo, bhi), nil
		}
	}
	return 0, fmt.Errorf("rangequery: no grid for attribute pair (%d,%d)", ai, aj)
}

// Hier returns the hierarchical estimator of numeric attribute attr
// (schema index), or nil if the attribute has none.
func (a *Accumulator) Hier(attr int) *HierEstimator { return a.hier[attr] }

// GridFor returns the grid estimator of pair index p (see
// Collector.Pairs), or nil when grids are disabled.
func (a *Accumulator) GridFor(p int) *GridEstimator {
	if a.grids == nil || p < 0 || p >= len(a.grids) {
		return nil
	}
	return a.grids[p]
}

// Aggregator is the concurrency-safe server-side estimator for range
// reports: an Accumulator behind one mutex. The sharded pipeline bypasses
// it and guards one Accumulator per shard with the shard lock instead.
type Aggregator struct {
	mu  sync.Mutex
	acc *Accumulator
}

// NewAggregator creates an aggregator matching the collector's
// configuration.
func NewAggregator(c *Collector) *Aggregator {
	return &Aggregator{acc: NewAccumulator(c)}
}

// Collector returns the collector configuration this aggregator matches.
func (a *Aggregator) Collector() *Collector { return a.acc.col }

// Schema returns the source schema.
func (a *Aggregator) Schema() *schema.Schema { return a.acc.col.disc.src }

// Validate checks a report against the aggregator's configuration without
// mutating any state; it needs no lock (see Accumulator.Validate).
func (a *Aggregator) Validate(rep Report) error { return a.acc.Validate(rep) }

// Add validates and folds one report into the aggregate state.
func (a *Aggregator) Add(rep Report) error {
	if err := a.acc.Validate(rep); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.acc.FoldValidated(rep)
	return nil
}

// FoldBatch validates every report without the lock, then folds the whole
// batch under a single lock acquisition.
func (a *Aggregator) FoldBatch(reps []Report) error {
	for i, rep := range reps {
		if err := a.acc.Validate(rep); err != nil {
			return fmt.Errorf("rangequery: report %d: %w", i, err)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, rep := range reps {
		a.acc.FoldValidated(rep)
	}
	return nil
}

// N returns the number of reports received.
func (a *Aggregator) N() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acc.n
}

// Merge combines another aggregator built from the same collector. The
// source is snapshotted under its own lock before this aggregator locks,
// so concurrent cross-merges (and self-merges) cannot deadlock.
func (a *Aggregator) Merge(o *Aggregator) {
	o.mu.Lock()
	snap := o.acc.clone()
	o.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	a.acc.Merge(snap)
}

// MergeAccumulator folds an unlocked accumulator's state in (the sharded
// pipeline's snapshot path: the caller holds whatever lock guards acc).
func (a *Aggregator) MergeAccumulator(acc *Accumulator) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.acc.Merge(acc)
}

// Range1D estimates the fraction of users whose numeric attribute attr
// (schema index) lies in [lo, hi]; see Accumulator.Range1D.
func (a *Aggregator) Range1D(attr int, lo, hi float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acc.Range1D(attr, lo, hi)
}

// Range2D estimates the mass of a conjunctive 2-D range; see
// Accumulator.Range2D.
func (a *Aggregator) Range2D(ai, aj int, alo, ahi, blo, bhi float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acc.Range2D(ai, aj, alo, ahi, blo, bhi)
}

// Hier returns the hierarchical estimator of numeric attribute attr
// (schema index), or nil if the attribute has none.
func (a *Aggregator) Hier(attr int) *HierEstimator {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acc.hier[attr]
}

// GridFor returns the grid estimator of pair index p (see
// Collector.Pairs), or nil when grids are disabled.
func (a *Aggregator) GridFor(p int) *GridEstimator {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acc.GridFor(p)
}
