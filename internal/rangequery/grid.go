package rangequery

import (
	"fmt"

	"ldp/internal/freq"
	"ldp/internal/hist"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// The 2-D grid estimator answers conjunctive range queries over a pair of
// numeric attributes (Yang et al.'s two-dimensional grids, TDG): the unit
// square [-1,1]^2 is tiled by a uniform g x g grid, each user reports the
// cell containing their pair of values through a frequency oracle over the
// g^2 cell domain at the full budget, and the aggregator reads any
// rectangle off the debiased joint histogram. Coarse grids trade
// discretization bias for per-cell noise; g in the 8-16 range is the
// paper's sweet spot at moderate eps.

// GridCollector randomizes a pair of numeric values into a cell report.
// It is safe for concurrent use.
type GridCollector struct {
	eps    float64
	cells  int // per-axis resolution g
	oracle freq.Oracle
	bits   bool // whether the oracle responses carry bitsets
}

// NewGridCollector builds a g x g grid collector. factory chooses the
// frequency oracle over the g^2 cells (nil means OUE).
func NewGridCollector(eps float64, cells int, factory freq.Factory) (*GridCollector, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if cells < 2 {
		return nil, fmt.Errorf("rangequery: need >= 2 grid cells per axis, got %d", cells)
	}
	if factory == nil {
		factory = func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) }
	}
	o, err := factory(eps, cells*cells)
	if err != nil {
		return nil, err
	}
	return &GridCollector{eps: eps, cells: cells, oracle: o, bits: freq.UsesBitset(o)}, nil
}

// Epsilon returns the privacy budget.
func (c *GridCollector) Epsilon() float64 { return c.eps }

// Cells returns the per-axis resolution g.
func (c *GridCollector) Cells() int { return c.cells }

// Oracle returns the frequency oracle over the g^2 cell domain.
func (c *GridCollector) Oracle() freq.Oracle { return c.oracle }

// CellOf maps a value pair in [-1,1]^2 (clamped) to its flattened cell
// index cx*g + cy.
func (c *GridCollector) CellOf(x, y float64) int {
	return bucketOf(x, c.cells)*c.cells + bucketOf(y, c.cells)
}

// Perturb randomizes the pair's cell membership under eps-LDP.
func (c *GridCollector) Perturb(x, y float64, r *rng.Rand) freq.Response {
	return c.oracle.Perturb(c.CellOf(x, y), r)
}

// GridEstimator aggregates cell reports into a consistent joint histogram
// and answers rectangle queries. It is not safe for concurrent use; use
// one per goroutine and Merge (the top-level Aggregator adds locking).
type GridEstimator struct {
	col   *GridCollector
	inner *freq.Estimator
}

// NewGridEstimator creates an estimator bound to the collector's oracle.
func NewGridEstimator(c *GridCollector) *GridEstimator {
	return &GridEstimator{col: c, inner: freq.NewEstimator(c.oracle)}
}

// Check validates a response against the g^2 cell domain without mutating
// any state (decoded frames are attacker-controlled).
func (e *GridEstimator) Check(resp freq.Response) error {
	return checkResponse(resp, e.col.cells*e.col.cells, e.col.bits)
}

// Add folds one response in, rejecting responses whose shape does not
// match the oracle.
func (e *GridEstimator) Add(resp freq.Response) error {
	if err := e.Check(resp); err != nil {
		return err
	}
	e.inner.Add(resp)
	return nil
}

// Merge combines another estimator built from the same collector.
func (e *GridEstimator) Merge(o *GridEstimator) { e.inner.Merge(o.inner) }

// clone deep-copies the estimator through the support counts (used by
// Aggregator.Merge to snapshot without aliasing).
func (e *GridEstimator) clone() *GridEstimator {
	c := NewGridEstimator(e.col)
	// Shapes match by construction; AddCounts cannot fail.
	_ = c.inner.AddCounts(e.inner.Counts(), e.inner.N())
	return c
}

// N returns the number of responses aggregated.
func (e *GridEstimator) N() int64 { return e.inner.N() }

// Joint returns the consistent joint cell histogram: the debiased g^2
// frequency estimates post-processed with Norm-Sub, so every entry is
// non-negative and the total is exactly one. Index as [cx*g + cy].
func (e *GridEstimator) Joint() []float64 {
	return hist.NormSub(e.inner.Estimates())
}

// RectMass estimates the population mass of the rectangle
// [xlo, xhi] x [ylo, yhi] from the consistent joint histogram; cells
// partially covered contribute proportionally to their overlap area.
func (e *GridEstimator) RectMass(xlo, xhi, ylo, yhi float64) float64 {
	return rectMass(e.Joint(), e.col.cells, xlo, xhi, ylo, yhi)
}

// View snapshots the consistent joint histogram so that many rectangle
// queries can be served without re-debiasing or re-running Norm-Sub: the
// per-epoch precomputation a server answering heavy query traffic does
// once per view.
func (e *GridEstimator) View() *GridView {
	return &GridView{cells: e.col.cells, joint: e.Joint()}
}

// GridView is an immutable snapshot of a GridEstimator's Norm-Sub-
// consistent joint cell histogram. It is safe for concurrent use; queries
// allocate nothing.
type GridView struct {
	cells int
	joint []float64
}

// Cells returns the per-axis resolution g.
func (v *GridView) Cells() int { return v.cells }

// Joint returns a copy of the consistent joint cell histogram.
func (v *GridView) Joint() []float64 {
	out := make([]float64, len(v.joint))
	copy(out, v.joint)
	return out
}

// RectMass answers the rectangle [xlo, xhi] x [ylo, yhi] from the
// precomputed consistent histogram: a pure lookup loop, zero allocation.
func (v *GridView) RectMass(xlo, xhi, ylo, yhi float64) float64 {
	return rectMass(v.joint, v.cells, xlo, xhi, ylo, yhi)
}

// rectMass integrates the joint histogram over a clamped query rectangle;
// cells partially covered contribute proportionally to their overlap area.
func rectMass(joint []float64, g int, xlo, xhi, ylo, yhi float64) float64 {
	xlo, xhi = mech.Clamp1(xlo), mech.Clamp1(xhi)
	ylo, yhi = mech.Clamp1(ylo), mech.Clamp1(yhi)
	if xhi <= xlo || yhi <= ylo {
		return 0
	}
	w := 2 / float64(g)
	mass := 0.0
	for cx := 0; cx < g; cx++ {
		fx := overlap1(xlo, xhi, -1+float64(cx)*w, w)
		if fx <= 0 {
			continue
		}
		for cy := 0; cy < g; cy++ {
			fy := overlap1(ylo, yhi, -1+float64(cy)*w, w)
			if fy > 0 {
				mass += joint[cx*g+cy] * fx * fy
			}
		}
	}
	return mass
}

// overlap1 returns the fraction of the cell interval [cellLo, cellLo+w)
// covered by the query interval [lo, hi].
func overlap1(lo, hi, cellLo, w float64) float64 {
	a, b := lo, hi
	if cellLo > a {
		a = cellLo
	}
	if cellLo+w < b {
		b = cellLo + w
	}
	if b <= a {
		return 0
	}
	return (b - a) / w
}
