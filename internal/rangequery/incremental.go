package rangequery

import "ldp/internal/freq"

// Incremental view maintenance support. The sharded pipeline keeps, per
// shard, dirty bits over a flat slot space of range-query components —
// one slot per (numeric attribute, hierarchy depth) pair and one per 2-D
// grid — so that a view rebuild can re-debias (and re-run Norm-Sub on)
// only the components whose support counts actually changed since the
// previous view. The slot layout is attribute-major and mirrors
// AccState.Levels: slot numPos[attr]*Depths() + depth-1 for hierarchy
// levels, and the pair index for grids.

// LevelSlots returns the size of the flat hierarchy-level slot space:
// one slot per (numeric attribute, depth) pair.
func (c *Collector) LevelSlots() int { return len(c.numeric) * c.hier.depths }

// GridSlots returns the size of the flat grid slot space: one slot per
// attribute pair, or 0 when grids are disabled.
func (c *Collector) GridSlots() int {
	if c.grid == nil {
		return 0
	}
	return len(c.pairs)
}

// LevelIndex maps a (schema attribute, 1-based depth) pair to its flat
// level slot, or -1 when the attribute is not numeric or the depth is out
// of range.
func (c *Collector) LevelIndex(attr, depth int) int {
	if attr < 0 || attr >= len(c.numPos) || c.numPos[attr] < 0 ||
		depth < 1 || depth > c.hier.depths {
		return -1
	}
	return c.numPos[attr]*c.hier.depths + depth - 1
}

// SyncDeltaLevel folds the support-count delta of one hierarchy level slot
// (a's counts minus base's) into agg and advances base to match a: the
// shard-side half of an incremental rebuild. All three accumulators must
// share a's collector; the caller must exclude concurrent folds into a.
func (a *Accumulator) SyncDeltaLevel(li int, base, agg *Accumulator) {
	depths := a.col.hier.depths
	attr := a.col.numeric[li/depths]
	d := li % depths
	freq.SyncDelta(a.hier[attr].levels[d], base.hier[attr].levels[d], agg.hier[attr].levels[d])
}

// SyncDeltaGrid folds the support-count delta of one 2-D grid slot into
// agg and advances base to match a; see SyncDeltaLevel.
func (a *Accumulator) SyncDeltaGrid(p int, base, agg *Accumulator) {
	freq.SyncDelta(a.grids[p].inner, base.grids[p].inner, agg.grids[p].inner)
}

// SyncDeltaN folds the report-count delta into agg and advances base to
// match a. Unlike the per-slot syncs it is unconditional: a report can
// change an oracle's reporter count without touching any support count
// (an all-zero OUE bitset), so n is synced on every rebuild regardless of
// dirty bits.
func (a *Accumulator) SyncDeltaN(base, agg *Accumulator) {
	if d := a.n - base.n; d != 0 {
		agg.n += d
		base.n = a.n
	}
}

// RebuildView builds a query view of the accumulator, reusing the previous
// view's immutable per-depth estimate slices and per-grid consistent
// histograms for every slot the dirty predicates report unchanged. Only
// dirty levels are re-debiased and only dirty grids re-run Norm-Sub, so
// the cost is proportional to the ingest delta's footprint rather than the
// domain. A nil prev falls back to a full View. The caller must exclude
// concurrent folds for the duration of the call and must pass predicates
// consistent with the accumulator's actual changes since prev — a slot
// reported clean is served from prev verbatim.
func (a *Accumulator) RebuildView(prev *View, dirtyLevel, dirtyGrid func(int) bool) *View {
	if prev == nil {
		return a.View()
	}
	depths := a.col.hier.depths
	v := &View{col: a.col, n: a.n}
	// A small delta usually leaves one whole family untouched (a report
	// dirties either one level or one grid, never both), and prev's slices
	// are immutable — so when every slot of a family is clean and present
	// in prev, the family's slice is aliased wholesale instead of copied.
	hierClean := true
	for pos, attr := range a.col.numeric {
		if prev.hier[attr] == nil {
			hierClean = false
			break
		}
		base := pos * depths
		for d := 0; d < depths; d++ {
			if dirtyLevel(base + d) {
				hierClean = false
				break
			}
		}
		if !hierClean {
			break
		}
	}
	if hierClean {
		v.hier = prev.hier
	} else {
		v.hier = make([]*HierView, a.col.disc.src.Dim())
		for pos, attr := range a.col.numeric {
			base := pos * depths
			pv := prev.hier[attr]
			anyDirty := false
			for d := 0; d < depths; d++ {
				if dirtyLevel(base + d) {
					anyDirty = true
					break
				}
			}
			switch {
			case pv == nil:
				v.hier[attr] = a.hier[attr].View()
			case !anyDirty:
				v.hier[attr] = pv
			default:
				v.hier[attr] = a.hier[attr].viewPartial(pv, func(d int) bool { return dirtyLevel(base + d) })
			}
		}
	}
	if a.grids != nil {
		gridClean := len(prev.grids) == len(a.grids)
		for p := range a.grids {
			if !gridClean {
				break
			}
			if prev.grids[p] == nil || dirtyGrid(p) {
				gridClean = false
			}
		}
		if gridClean {
			v.grids = prev.grids
		} else {
			v.grids = make([]*GridView, len(a.grids))
			for p, g := range a.grids {
				if pg := prev.GridFor(p); pg != nil && !dirtyGrid(p) {
					v.grids[p] = pg
				} else {
					v.grids[p] = g.View()
				}
			}
		}
	}
	return v
}
