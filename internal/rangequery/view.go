package rangequery

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// View is an immutable query-optimized snapshot of one aggregation
// domain's range-query state: every attribute's per-depth interval
// estimates and every pair's Norm-Sub-consistent 2-D grid, debiased once
// at construction. Range1D and Range2D are pure lookups — no locks, no
// estimator rebuild, no allocation — so one View can serve an arbitrary
// number of concurrent queries at the cost of a single precomputation per
// aggregation epoch. Build one with Accumulator.View (the sharded
// pipeline's snapshot path) or Aggregator.View.
type View struct {
	col   *Collector
	n     int64
	hier  []*HierView // indexed by schema attribute; nil for non-numeric
	grids []*GridView // aligned with col.pairs; nil when grids are disabled
}

// View snapshots the accumulator's estimates into an immutable query view.
// The caller must exclude concurrent folds for the duration of the call
// (the pipeline holds its shard locks; Aggregator.View locks).
func (a *Accumulator) View() *View {
	v := &View{col: a.col, n: a.n, hier: make([]*HierView, a.col.disc.src.Dim())}
	for attr, est := range a.hier {
		v.hier[attr] = est.View()
	}
	if a.grids != nil {
		v.grids = make([]*GridView, len(a.grids))
		for i, g := range a.grids {
			v.grids[i] = g.View()
		}
	}
	return v
}

// ViewWith snapshots like View but spreads the per-attribute hierarchy
// debiasing and per-grid Norm-Sub derivations over up to workers
// goroutines. Each component view is computed by the same deterministic
// code on the same inputs as the serial path and lands in its own slot,
// so the result is bit-identical to View(); workers <= 1 (or fewer jobs
// than workers would split usefully) just runs View. The same exclusion
// rules as View apply.
func (a *Accumulator) ViewWith(workers int) *View {
	jobs := len(a.col.numeric) + len(a.grids)
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		return a.View()
	}
	v := &View{col: a.col, n: a.n, hier: make([]*HierView, a.col.disc.src.Dim())}
	if a.grids != nil {
		v.grids = make([]*GridView, len(a.grids))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				if j < len(a.col.numeric) {
					attr := a.col.numeric[j]
					v.hier[attr] = a.hier[attr].View()
				} else {
					p := j - len(a.col.numeric)
					v.grids[p] = a.grids[p].View()
				}
			}
		}()
	}
	wg.Wait()
	return v
}

// View snapshots the aggregator's current state into an immutable query
// view under the aggregator lock.
func (a *Aggregator) View() *View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acc.View()
}

// Collector returns the collector configuration the view was built from.
func (v *View) Collector() *Collector { return v.col }

// N returns the number of reports behind the view.
func (v *View) N() int64 { return v.n }

// Hier returns the snapshotted hierarchical view of numeric attribute attr
// (schema index), or nil if the attribute has none.
func (v *View) Hier(attr int) *HierView {
	if attr < 0 || attr >= len(v.hier) {
		return nil
	}
	return v.hier[attr]
}

// GridFor returns the snapshotted grid view of pair index p (see
// Collector.Pairs), or nil when grids are disabled.
func (v *View) GridFor(p int) *GridView {
	if v.grids == nil || p < 0 || p >= len(v.grids) {
		return nil
	}
	return v.grids[p]
}

// Range1D estimates the fraction of users whose numeric attribute attr
// (schema index) lies in [lo, hi] from the precomputed per-depth
// estimates: a pure lookup with zero allocation.
func (v *View) Range1D(attr int, lo, hi float64) (float64, error) {
	hv := v.Hier(attr)
	if hv == nil {
		return 0, fmt.Errorf("rangequery: attribute %d is not a numeric attribute of the schema", attr)
	}
	b0, b1, ok := v.col.disc.Span(lo, hi)
	if !ok {
		return 0, nil
	}
	return hv.SpanMass(b0, b1)
}

// Range2D estimates the fraction of users with attribute ai in [alo, ahi]
// AND attribute aj in [blo, bhi] from the pair's precomputed consistent
// grid: a pure lookup with zero allocation. The attribute order is free.
func (v *View) Range2D(ai, aj int, alo, ahi, blo, bhi float64) (float64, error) {
	if v.grids == nil {
		return 0, fmt.Errorf("rangequery: 2-D grids are disabled in this collector")
	}
	if aj < ai {
		ai, aj = aj, ai
		alo, ahi, blo, bhi = blo, bhi, alo, ahi
	}
	for p, pair := range v.col.pairs {
		if pair[0] == ai && pair[1] == aj {
			return v.grids[p].RectMass(alo, ahi, blo, bhi), nil
		}
	}
	return 0, fmt.Errorf("rangequery: no grid for attribute pair (%d,%d)", ai, aj)
}
