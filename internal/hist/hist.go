// Package hist estimates the full distribution (not just the mean) of a
// numeric attribute in [-1, 1] under eps-LDP, by bucketizing the domain
// into B equal-width bins and collecting the bin index through a
// categorical frequency oracle (OUE by default).
//
// This is the standard reduction the paper's related-work section points
// at (distribution estimation under LDP); it complements the mean-oriented
// PM/HM mechanisms: from the debiased histogram one can read off means,
// quantiles and arbitrary range queries, at the cost of discretization
// bias O(1/B) and the oracle's per-bin noise.
//
// Raw debiased histograms can have small negative entries and need not sum
// to one; Smoothed() projects them onto the probability simplex (Euclidean
// projection, Duchi et al. 2008), which never increases the L2 error.
package hist

import (
	"fmt"
	"sort"

	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Collector randomizes one numeric value into a frequency-oracle response
// over bin indices. It is safe for concurrent use.
type Collector struct {
	eps    float64
	bins   int
	oracle freq.Oracle
}

// NewCollector builds a histogram collector with the given number of bins
// (>= 2). factory is the frequency oracle to use (nil means OUE).
func NewCollector(eps float64, bins int, factory freq.Factory) (*Collector, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if bins < 2 {
		return nil, fmt.Errorf("hist: need >= 2 bins, got %d", bins)
	}
	if factory == nil {
		factory = func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) }
	}
	o, err := factory(eps, bins)
	if err != nil {
		return nil, err
	}
	return &Collector{eps: eps, bins: bins, oracle: o}, nil
}

// Epsilon returns the privacy budget.
func (c *Collector) Epsilon() float64 { return c.eps }

// Bins returns the number of histogram bins.
func (c *Collector) Bins() int { return c.bins }

// Oracle returns the underlying frequency oracle.
func (c *Collector) Oracle() freq.Oracle { return c.oracle }

// Bin maps a value in [-1, 1] (clamped) to its bin index.
func (c *Collector) Bin(v float64) int {
	v = mech.Clamp1(v)
	b := int((v + 1) / 2 * float64(c.bins))
	if b >= c.bins {
		b = c.bins - 1
	}
	return b
}

// Midpoint returns the center of bin b, the value used when
// reconstructing moments from the histogram.
func (c *Collector) Midpoint(b int) float64 {
	w := 2 / float64(c.bins)
	return -1 + (float64(b)+0.5)*w
}

// Perturb randomizes the value's bin membership under eps-LDP.
func (c *Collector) Perturb(v float64, r *rng.Rand) freq.Response {
	return c.oracle.Perturb(c.Bin(v), r)
}

// Estimator aggregates responses into a distribution estimate. Not safe
// for concurrent use; use one per goroutine and Merge.
type Estimator struct {
	col   *Collector
	inner *freq.Estimator
}

// NewEstimator creates an estimator bound to the collector's oracle.
func NewEstimator(c *Collector) *Estimator {
	return &Estimator{col: c, inner: freq.NewEstimator(c.oracle)}
}

// Add folds one response in.
func (e *Estimator) Add(resp freq.Response) { e.inner.Add(resp) }

// Merge combines another estimator built from the same collector.
func (e *Estimator) Merge(o *Estimator) { e.inner.Merge(o.inner) }

// N returns the number of responses aggregated.
func (e *Estimator) N() int64 { return e.inner.N() }

// Histogram returns the raw debiased bin frequencies (may include small
// negative values and need not sum to exactly one).
func (e *Estimator) Histogram() []float64 { return e.inner.Estimates() }

// Smoothed returns the histogram projected onto the probability simplex:
// the closest (in L2) nonnegative vector summing to one.
func (e *Estimator) Smoothed() []float64 { return ProjectSimplex(e.Histogram()) }

// Mean reconstructs the attribute mean from the smoothed histogram using
// bin midpoints. Discretization adds at most half a bin width of bias.
func (e *Estimator) Mean() float64 {
	sum := 0.0
	for b, f := range e.Smoothed() {
		sum += f * e.col.Midpoint(b)
	}
	return sum
}

// Quantile returns the q-quantile (0 <= q <= 1) of the smoothed histogram,
// interpolating linearly within the bin that crosses the target mass.
func (e *Estimator) Quantile(q float64) float64 {
	if q <= 0 {
		return -1
	}
	if q >= 1 {
		return 1
	}
	smoothed := e.Smoothed()
	w := 2 / float64(e.col.bins)
	acc := 0.0
	for b, f := range smoothed {
		if acc+f >= q {
			frac := 0.0
			if f > 0 {
				frac = (q - acc) / f
			}
			return -1 + (float64(b)+frac)*w
		}
		acc += f
	}
	return 1
}

// RangeMass returns the estimated probability mass of [lo, hi] under the
// smoothed histogram (bins partially covered contribute proportionally).
func (e *Estimator) RangeMass(lo, hi float64) float64 {
	lo, hi = mech.Clamp1(lo), mech.Clamp1(hi)
	if hi <= lo {
		return 0
	}
	smoothed := e.Smoothed()
	w := 2 / float64(e.col.bins)
	mass := 0.0
	for b, f := range smoothed {
		bLo := -1 + float64(b)*w
		bHi := bLo + w
		overlap := minF(hi, bHi) - maxF(lo, bLo)
		if overlap > 0 {
			mass += f * overlap / w
		}
	}
	return mass
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// NormSub post-processes a debiased frequency vector into a consistent
// distribution with the iterative Norm-Sub rule (Wang et al., "Locally
// Differentially Private Frequency Estimation with Consistency", NDSS
// 2020): repeatedly clamp non-positive entries to zero and shift the
// surviving positive entries by a uniform delta so the total is one,
// until the support stabilizes. Entries clamped in an earlier pass stay
// at zero even when the remaining mass is below one, which is where this
// differs from ProjectSimplex (whose water-filling shift is derived over
// the final support directly); both return a non-negative vector summing
// to exactly one. This is the consistency step the grid-based range-query
// estimators use. The input is not modified; an empty input returns nil.
func NormSub(v []float64) []float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	copy(out, v)
	// Iterate: zero out non-positive entries, then shift the surviving
	// support so the total is one. Each pass can only shrink the support,
	// so this terminates in at most n passes.
	for {
		sum, cnt := 0.0, 0
		for _, x := range out {
			if x > 0 {
				sum += x
				cnt++
			}
		}
		if cnt == 0 {
			// Everything was clamped away: fall back to uniform.
			for i := range out {
				out[i] = 1 / float64(n)
			}
			return out
		}
		delta := (1 - sum) / float64(cnt)
		changed := false
		for i, x := range out {
			switch {
			case x <= 0:
				out[i] = 0
			case x+delta <= 0:
				out[i] = 0
				changed = true
			default:
				out[i] = x + delta
			}
		}
		if !changed {
			return out
		}
	}
}

// ProjectSimplex returns the Euclidean projection of v onto the
// probability simplex {x : x >= 0, sum x = 1} (Duchi, Shalev-Shwartz,
// Singer, Chandra 2008). The input is not modified.
func ProjectSimplex(v []float64) []float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	sorted := make([]float64, n)
	copy(sorted, v)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	// Find rho = max{j : sorted[j] - (cumsum(sorted[0..j]) - 1)/(j+1) > 0}.
	cum, theta := 0.0, 0.0
	rho := -1
	for j, u := range sorted {
		cum += u
		if t := (cum - 1) / float64(j+1); u-t > 0 {
			rho, theta = j, t
		}
	}
	if rho < 0 {
		// All mass collapses to a uniform point (cannot happen for
		// finite inputs, but stay safe).
		out := make([]float64, n)
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	out := make([]float64, n)
	for i, x := range v {
		if d := x - theta; d > 0 {
			out[i] = d
		}
	}
	return out
}
