package hist

import (
	"math"
	"testing"
)

func TestNormSubBasics(t *testing.T) {
	if got := NormSub(nil); got != nil {
		t.Errorf("NormSub(nil) = %v, want nil", got)
	}
	cases := [][]float64{
		{0.2, 0.3, 0.5},               // already consistent
		{0.4, -0.1, 0.8},              // negative entry, oversum
		{-0.2, -0.3, 0.1},             // mostly negative
		{-1, -2, -3},                  // all negative: uniform fallback
		{0, 0, 0},                     // all zero: uniform fallback
		{1e-9, -5, 2.5},               // support shrinks across passes
		{0.25, 0.25, 0.25, 0.25, 0.1}, // mild oversum
	}
	for _, v := range cases {
		in := make([]float64, len(v))
		copy(in, v)
		got := NormSub(v)
		sum := 0.0
		for i, f := range got {
			if f < 0 {
				t.Errorf("NormSub(%v)[%d] = %v < 0", in, i, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("NormSub(%v) sums to %v, want 1", in, sum)
		}
		for i := range v {
			if v[i] != in[i] {
				t.Errorf("NormSub modified its input at %d", i)
			}
		}
	}
}

func TestNormSubPreservesConsistentInput(t *testing.T) {
	in := []float64{0.1, 0.2, 0.3, 0.4}
	got := NormSub(in)
	for i := range in {
		if math.Abs(got[i]-in[i]) > 1e-12 {
			t.Errorf("consistent input changed: got[%d] = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestNormSubOrderingPreserved(t *testing.T) {
	// The uniform shift preserves the ordering of surviving entries.
	got := NormSub([]float64{0.9, 0.5, -0.2, 0.3})
	if !(got[0] > got[1] && got[1] > got[3] && got[2] == 0) {
		t.Errorf("ordering not preserved: %v", got)
	}
}
