package hist

import (
	"math"
	"testing"
	"testing/quick"

	"ldp/internal/freq"
	"ldp/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0, 8, nil); err == nil {
		t.Error("want error for eps=0")
	}
	if _, err := NewCollector(1, 1, nil); err == nil {
		t.Error("want error for 1 bin")
	}
	failing := func(float64, int) (freq.Oracle, error) { return nil, errFake }
	if _, err := NewCollector(1, 4, failing); err == nil {
		t.Error("factory error must propagate")
	}
}

var errFake = errString("fake")

type errString string

func (e errString) Error() string { return string(e) }

func TestBinEdges(t *testing.T) {
	c, err := NewCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {-0.51, 0}, {-0.5, 1}, {-0.01, 1},
		{0, 2}, {0.49, 2}, {0.5, 3}, {1, 3},
		{-7, 0}, {7, 3}, // clamped
	}
	for _, cse := range cases {
		if got := c.Bin(cse.v); got != cse.want {
			t.Errorf("Bin(%v) = %d, want %d", cse.v, got, cse.want)
		}
	}
}

func TestMidpoints(t *testing.T) {
	c, _ := NewCollector(1, 4, nil)
	wants := []float64{-0.75, -0.25, 0.25, 0.75}
	for b, w := range wants {
		if got := c.Midpoint(b); !almostEqual(got, w, 1e-12) {
			t.Errorf("Midpoint(%d) = %v, want %v", b, got, w)
		}
	}
	// Midpoint of the bin containing v is within half a bin width of v.
	f := func(vRaw int8) bool {
		v := float64(vRaw) / 128
		return math.Abs(c.Midpoint(c.Bin(v))-v) <= 0.25+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRecovery(t *testing.T) {
	// A mixture population: the estimated histogram must match the true
	// bin frequencies within oracle noise.
	c, err := NewCollector(2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(c)
	truth := make([]float64, 8)
	r := rng.New(1)
	const n = 150000
	for i := 0; i < n; i++ {
		v := rng.TruncGauss(r, 0.2, 0.3, -1, 1)
		truth[c.Bin(v)]++
		est.Add(c.Perturb(v, r))
	}
	got := est.Histogram()
	for b := range truth {
		want := truth[b] / n
		tol := 6 * math.Sqrt(freq.TheoreticalVariance(c.Oracle(), want, n))
		if math.Abs(got[b]-want) > tol {
			t.Errorf("bin %d: freq %v, want %v +- %v", b, got[b], want, tol)
		}
	}
}

func TestSmoothedIsDistribution(t *testing.T) {
	c, _ := NewCollector(0.5, 16, nil) // low eps: noisy raw histogram
	est := NewEstimator(c)
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		est.Add(c.Perturb(rng.Uniform(r, -1, 1), r))
	}
	smoothed := est.Smoothed()
	sum := 0.0
	for _, f := range smoothed {
		if f < 0 {
			t.Fatalf("negative smoothed frequency %v", f)
		}
		sum += f
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("smoothed histogram sums to %v", sum)
	}
}

func TestMeanFromHistogram(t *testing.T) {
	c, _ := NewCollector(4, 32, nil)
	est := NewEstimator(c)
	r := rng.New(3)
	const n = 200000
	trueSum := 0.0
	for i := 0; i < n; i++ {
		v := rng.TruncGauss(r, -0.3, 0.2, -1, 1)
		trueSum += v
		est.Add(c.Perturb(v, r))
	}
	got := est.Mean()
	want := trueSum / n
	// Discretization bias is at most half a bin width (1/32) plus noise.
	if math.Abs(got-want) > 0.05 {
		t.Errorf("histogram mean %v, want %v", got, want)
	}
}

func TestQuantileFromHistogram(t *testing.T) {
	c, _ := NewCollector(4, 32, nil)
	est := NewEstimator(c)
	r := rng.New(4)
	const n = 200000
	for i := 0; i < n; i++ {
		est.Add(c.Perturb(rng.Uniform(r, -1, 1), r))
	}
	// Uniform data: quantile q should be near 2q-1.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
		got := est.Quantile(q)
		if math.Abs(got-(2*q-1)) > 0.1 {
			t.Errorf("quantile %v = %v, want ~%v", q, got, 2*q-1)
		}
	}
	if est.Quantile(0) != -1 || est.Quantile(1) != 1 {
		t.Error("extreme quantiles should hit the domain bounds")
	}
}

func TestRangeMass(t *testing.T) {
	c, _ := NewCollector(4, 16, nil)
	est := NewEstimator(c)
	r := rng.New(5)
	const n = 150000
	for i := 0; i < n; i++ {
		est.Add(c.Perturb(rng.Uniform(r, -1, 1), r))
	}
	// Uniform: mass of [lo, hi] ~ (hi-lo)/2.
	for _, rg := range [][2]float64{{-1, 1}, {-0.5, 0.5}, {0, 0.25}} {
		got := est.RangeMass(rg[0], rg[1])
		want := (rg[1] - rg[0]) / 2
		if math.Abs(got-want) > 0.08 {
			t.Errorf("mass[%v,%v] = %v, want ~%v", rg[0], rg[1], got, want)
		}
	}
	if est.RangeMass(0.5, 0.5) != 0 || est.RangeMass(0.7, 0.2) != 0 {
		t.Error("degenerate ranges should have zero mass")
	}
}

func TestEstimatorMerge(t *testing.T) {
	c, _ := NewCollector(1, 8, nil)
	whole, a, b := NewEstimator(c), NewEstimator(c), NewEstimator(c)
	r := rng.New(6)
	for i := 0; i < 2000; i++ {
		resp := c.Perturb(rng.Uniform(r, -1, 1), r)
		whole.Add(resp)
		if i%2 == 0 {
			a.Add(resp)
		} else {
			b.Add(resp)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatal("merged N mismatch")
	}
	ha, hw := a.Histogram(), whole.Histogram()
	for i := range ha {
		if ha[i] != hw[i] {
			t.Fatal("merged histogram mismatch")
		}
	}
}

func TestProjectSimplexProperties(t *testing.T) {
	f := func(raw [6]int8) bool {
		v := make([]float64, 6)
		for i, x := range raw {
			v[i] = float64(x) / 32
		}
		p := ProjectSimplex(v)
		sum := 0.0
		for _, x := range p {
			if x < 0 {
				return false
			}
			sum += x
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectSimplexIdempotentOnSimplex(t *testing.T) {
	v := []float64{0.1, 0.2, 0.3, 0.4}
	p := ProjectSimplex(v)
	for i := range v {
		if !almostEqual(p[i], v[i], 1e-9) {
			t.Errorf("projection moved a simplex point: %v -> %v", v, p)
		}
	}
}

func TestProjectSimplexKnownCase(t *testing.T) {
	// Projecting (1,1) onto the simplex gives (0.5, 0.5).
	p := ProjectSimplex([]float64{1, 1})
	if !almostEqual(p[0], 0.5, 1e-9) || !almostEqual(p[1], 0.5, 1e-9) {
		t.Errorf("ProjectSimplex([1,1]) = %v", p)
	}
	if out := ProjectSimplex(nil); out != nil {
		t.Error("empty projection should be nil")
	}
}

func TestHistogramLDPComesFromOracle(t *testing.T) {
	// The collector must not weaken the oracle's guarantee: its response
	// for value v equals the oracle's response for Bin(v) on the same
	// stream.
	c, _ := NewCollector(1, 8, nil)
	for seed := uint64(0); seed < 10; seed++ {
		direct := c.Oracle().Perturb(c.Bin(0.3), rng.New(seed))
		viaCol := c.Perturb(0.3, rng.New(seed))
		for w := range direct.Bits {
			if direct.Bits[w] != viaCol.Bits[w] {
				t.Fatal("collector response differs from oracle response")
			}
		}
	}
}
