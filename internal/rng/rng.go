// Package rng centralizes the randomness used by the LDP mechanisms and the
// simulation harness.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every user in a simulated population draws from an independent stream
// derived deterministically from (base seed, stream index) via SplitMix64,
// so results are identical regardless of how work is partitioned across
// goroutines.
//
// The package also provides the distribution samplers the paper needs that
// the standard library lacks: Laplace, truncated Gaussian, the power-law
// density c(x+2)^{-10} used in Section VI, and without-replacement index
// sampling for Algorithm 4.
package rng

import (
	"math"
	"math/rand/v2"
)

// Rand is the concrete PRNG type used throughout the module. It is
// math/rand/v2's generator seeded with PCG; a *Rand must not be shared
// between goroutines without external synchronization.
type Rand = rand.Rand

// New returns a PRNG seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	return rand.New(rand.NewPCG(seed, splitmix64(seed+0x9e3779b97f4a7c15)))
}

// NewStream returns an independent PRNG for stream index i under the given
// base seed. Streams with distinct (seed, i) pairs are statistically
// independent for all practical purposes.
func NewStream(seed, i uint64) *Rand {
	s1 := splitmix64(seed ^ 0xa0761d6478bd642f*(i+1))
	s2 := splitmix64(s1 + i)
	return rand.New(rand.NewPCG(s1, s2))
}

// splitmix64 is the SplitMix64 finalizer, used to derive well-mixed seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func Bernoulli(r *Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a sample from the uniform distribution on [a, b).
func Uniform(r *Rand, a, b float64) float64 {
	return a + r.Float64()*(b-a)
}

// Laplace returns a sample from the Laplace distribution with mean 0 and
// scale b (variance 2b^2).
func Laplace(r *Rand, b float64) float64 {
	// Difference of two i.i.d. exponentials is Laplace; this form avoids
	// the log-of-zero edge case of the inverse-CDF method.
	return b * (r.ExpFloat64() - r.ExpFloat64())
}

// TruncGauss returns a sample from N(mu, sigma^2) conditioned on lying in
// [lo, hi], via rejection sampling. The paper's Figure 5 workload uses
// N(mu, 1/16) truncated to [-1, 1], for which acceptance is high; for
// pathological parameter choices where fewer than 1 in 10^6 proposals
// would be accepted, the midpoint of the interval is returned.
func TruncGauss(r *Rand, mu, sigma, lo, hi float64) float64 {
	for i := 0; i < 1_000_000; i++ {
		x := mu + sigma*r.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return (lo + hi) / 2
}

// PowerLaw samples from the density proportional to (x+2)^{-10} on [-1, 1]
// (the power-law workload of Section VI) using the inverse CDF.
func PowerLaw(r *Rand) float64 {
	// F(x) = (1 - (x+2)^{-9}) / (1 - 3^{-9}) on [-1, 1].
	const inv39 = 1.0 / 19683 // 3^{-9}
	u := r.Float64()
	return math.Pow(1-u*(1-inv39), -1.0/9) - 2
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// {0, ..., n-1} via a partial Fisher-Yates shuffle. It panics if k > n or
// k < 0; callers control both values. The returned slice has length k and
// is in shuffle order (not sorted).
func SampleWithoutReplacement(r *Rand, n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k:k]
}

// Geometric returns a sample from the geometric distribution on {0, 1, ...}
// with P(X >= t) = q^t, i.e. success probability 1-q. It requires 0 < q < 1.
// It is used to pick the band index of the staircase-family noise
// distributions, where q = e^{-eps}.
func Geometric(r *Rand, q float64) int {
	// Inverse CDF: X = floor(ln U / ln q).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(q))
}

// WeightedIndexLog samples an index i with probability proportional to
// exp(logw[i]), computed stably. Entries may be -Inf (zero weight).
// It panics if the weights are all zero or the slice is empty.
func WeightedIndexLog(r *Rand, logw []float64) int {
	if len(logw) == 0 {
		panic("rng: WeightedIndexLog on empty weights")
	}
	max := math.Inf(-1)
	for _, w := range logw {
		if w > max {
			max = w
		}
	}
	if math.IsInf(max, -1) {
		panic("rng: WeightedIndexLog with all-zero weights")
	}
	total := 0.0
	for _, w := range logw {
		total += math.Exp(w - max)
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range logw {
		acc += math.Exp(w - max)
		if u < acc {
			return i
		}
	}
	return len(logw) - 1 // floating point slack
}
