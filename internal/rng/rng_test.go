package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 collided on %d of 1000 draws", same)
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	f := func(seed, i uint64) bool {
		return NewStream(seed, i).Uint64() == NewStream(seed, i).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(r, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(r, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(2)
	const n = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if Bernoulli(r, p) {
			hits++
		}
	}
	got := float64(hits) / n
	// 5-sigma band for a binomial proportion.
	tol := 5 * math.Sqrt(p*(1-p)/n)
	if math.Abs(got-p) > tol {
		t.Errorf("Bernoulli frequency = %v, want %v +- %v", got, p, tol)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		x := Uniform(r, -2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(4)
	const n = 500000
	const b = 2.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := Laplace(r, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * b * b // variance of Laplace(b)
	if math.Abs(variance-want) > 0.15*want {
		t.Errorf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestTruncGaussBoundsAndMean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := TruncGauss(r, 0.5, 0.25, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("TruncGauss out of bounds: %v", x)
		}
		sum += x
	}
	// Analytic mean of N(0.5, 0.25^2) truncated to [-1, 1]:
	// mu + sigma*(phi(-6)-phi(2))/(Phi(2)-Phi(-6)) ~= 0.48619.
	if mean := sum / n; math.Abs(mean-0.48619) > 0.005 {
		t.Errorf("TruncGauss mean = %v, want ~0.48619", mean)
	}
}

func TestPowerLawBoundsAndSkew(t *testing.T) {
	r := New(6)
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		x := PowerLaw(r)
		if x < -1 || x > 1 {
			t.Fatalf("PowerLaw out of bounds: %v", x)
		}
		if x < -0.5 {
			below++
		}
	}
	// The density ~ (x+2)^{-10} is heavily skewed toward -1: analytically
	// P(X < -0.5) = (1 - 1.5^{-9})/(1 - 3^{-9}) ~= 0.974.
	got := float64(below) / n
	if math.Abs(got-0.974) > 0.01 {
		t.Errorf("P(X < -0.5) = %v, want ~0.974", got)
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	r := New(7)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		got := SampleWithoutReplacement(r, n, k)
		if len(got) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each index should appear with probability k/n.
	r := New(8)
	const n, k, trials = 10, 3, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(r, n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d drawn %d times, want ~%v", i, c, want)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > n")
		}
	}()
	SampleWithoutReplacement(New(9), 3, 4)
}

func TestGeometricDistribution(t *testing.T) {
	r := New(10)
	const q = 0.4
	const n = 200000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[Geometric(r, q)]++
	}
	// P(X = t) = q^t (1-q).
	for x := 0; x <= 4; x++ {
		want := math.Pow(q, float64(x)) * (1 - q)
		got := float64(counts[x]) / n
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n)+1e-4 {
			t.Errorf("P(X=%d) = %v, want %v", x, got, want)
		}
	}
}

func TestWeightedIndexLog(t *testing.T) {
	r := New(11)
	logw := []float64{math.Log(1), math.Log(2), math.Log(7)}
	const n = 200000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[WeightedIndexLog(r, logw)]++
	}
	wants := []float64{0.1, 0.2, 0.7}
	for i, w := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("P(i=%d) = %v, want %v", i, got, w)
		}
	}
}

func TestWeightedIndexLogWithNegInf(t *testing.T) {
	r := New(12)
	logw := []float64{math.Inf(-1), 0, math.Inf(-1)}
	for i := 0; i < 1000; i++ {
		if got := WeightedIndexLog(r, logw); got != 1 {
			t.Fatalf("index = %d, want 1", got)
		}
	}
}

func TestWeightedIndexLogPanicsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for all -Inf weights")
		}
	}()
	WeightedIndexLog(New(13), []float64{math.Inf(-1), math.Inf(-1)})
}

func TestWeightedIndexLogLargeMagnitudes(t *testing.T) {
	// Stability: weights far outside exp range must still normalize.
	r := New(14)
	logw := []float64{-1000, -1000 + math.Log(3)}
	counts := make([]int, 2)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[WeightedIndexLog(r, logw)]++
	}
	got := float64(counts[1]) / n
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("P(i=1) = %v, want 0.75", got)
	}
}

func TestStreamsCoverUnitInterval(t *testing.T) {
	// Sanity check that stream-derived generators are not badly biased.
	r := NewStream(99, 1234)
	const n = 100000
	var xs []float64
	for i := 0; i < n; i++ {
		xs = append(xs, r.Float64())
	}
	sort.Float64s(xs)
	// Kolmogorov-Smirnov style check at a few quantiles.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := xs[int(q*float64(n))]
		if math.Abs(got-q) > 0.01 {
			t.Errorf("quantile %v = %v", q, got)
		}
	}
}
