package ldp

import (
	"fmt"
	"testing"

	"ldp/internal/dataset"
	"ldp/internal/experiment"
)

// Micro-benchmarks: per-report cost of each mechanism. These measure the
// client-side work a single user performs.

func BenchmarkPerturbPM(b *testing.B) {
	m, err := NewPiecewise(1)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(0.3, r)
	}
}

func BenchmarkPerturbHM(b *testing.B) {
	m, err := NewHybrid(1)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(0.3, r)
	}
}

func BenchmarkPerturbDuchi(b *testing.B) {
	m, err := NewDuchi(1)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(0.3, r)
	}
}

func BenchmarkPerturbLaplace(b *testing.B) {
	m, err := NewLaplace(1)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(0.3, r)
	}
}

func BenchmarkPerturbStaircase(b *testing.B) {
	m, err := NewStaircase(1)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(0.3, r)
	}
}

func BenchmarkPerturbDuchiMulti(b *testing.B) {
	for _, d := range []int{16, 90} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			m, err := NewDuchiMulti(1, d)
			if err != nil {
				b.Fatal(err)
			}
			r := NewRand(1)
			in := make([]float64, d)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PerturbVector(in, r)
			}
		})
	}
}

func BenchmarkPerturbCollector(b *testing.B) {
	for _, d := range []int{16, 90} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			m, err := NewNumericCollector(PM, 1, d)
			if err != nil {
				b.Fatal(err)
			}
			r := NewRand(1)
			in := make([]float64, d)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PerturbVector(in, r)
			}
		})
	}
}

// BenchmarkPerturbCollectorInto is BenchmarkPerturbCollector with the
// output buffer reused through PerturbVectorInto, the shape of a client
// simulation loop randomizing millions of tuples.
func BenchmarkPerturbCollectorInto(b *testing.B) {
	for _, d := range []int{16, 90} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			m, err := NewNumericCollector(PM, 1, d)
			if err != nil {
				b.Fatal(err)
			}
			r := NewRand(1)
			in := make([]float64, d)
			var out []float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out = m.PerturbVectorInto(out, in, r)
			}
		})
	}
}

func BenchmarkPerturbMixedTuple(b *testing.B) {
	c := dataset.NewBR()
	col, err := NewCollector(c.Schema(), 1, PM, OUE)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	tup := c.Tuple(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := col.Perturb(tup, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	c := dataset.NewBR()
	col, err := NewCollector(c.Schema(), 8, PM, OUE)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRand(1)
	rep, err := col.Perturb(c.Tuple(r), r)
	if err != nil {
		b.Fatal(err)
	}
	urep := Report{Task: TaskJoint, Entries: rep.Entries}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := EncodeReport(urep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeReport(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure/table benchmarks: each regenerates its experiment at reduced
// scale and reports the headline metric via b.ReportMetric. Run the full
// versions with cmd/ldpbench.

// benchOpts are the scaled-down experiment options used by the per-figure
// benchmarks.
func benchOpts() experiment.Options {
	return experiment.Options{
		N:        4_000,
		Runs:     1,
		Seed:     1,
		Workers:  2,
		EpsList:  []float64{1},
		Eps:      1,
		ERMUsers: 3_000,
		Splits:   1,
	}
}

// runExperimentBench executes one registered experiment b.N times and
// reports `metric` taken from the first row/column of the first table.
func runExperimentBench(b *testing.B, name, metric string) {
	b.Helper()
	r, err := experiment.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	var tables []experiment.Table
	for i := 0; i < b.N; i++ {
		tables, err = r.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tables) > 0 && len(tables[0].Rows) > 0 && len(tables[0].Rows[0].Values) > 0 {
		b.ReportMetric(tables[0].Rows[0].Values[0], metric)
	}
}

func BenchmarkTable1(b *testing.B) { runExperimentBench(b, "table1", "maxvar") }
func BenchmarkFig1(b *testing.B)   { runExperimentBench(b, "fig1", "maxvar") }
func BenchmarkFig2(b *testing.B)   { runExperimentBench(b, "fig2", "pdf") }
func BenchmarkFig3(b *testing.B)   { runExperimentBench(b, "fig3", "ratio") }
func BenchmarkFig4(b *testing.B)   { runExperimentBench(b, "fig4", "mse") }
func BenchmarkFig5(b *testing.B)   { runExperimentBench(b, "fig5", "mse") }
func BenchmarkFig6(b *testing.B)   { runExperimentBench(b, "fig6", "mse") }
func BenchmarkFig7(b *testing.B)   { runExperimentBench(b, "fig7", "mse") }
func BenchmarkFig8(b *testing.B)   { runExperimentBench(b, "fig8", "mse") }
func BenchmarkFig9(b *testing.B)   { runExperimentBench(b, "fig9", "misclass") }
func BenchmarkFig10(b *testing.B)  { runExperimentBench(b, "fig10", "misclass") }
func BenchmarkFig11(b *testing.B)  { runExperimentBench(b, "fig11", "mse") }

func BenchmarkAblationK(b *testing.B)     { runExperimentBench(b, "ablation-k", "mse") }
func BenchmarkAblationAlpha(b *testing.B) { runExperimentBench(b, "ablation-alpha", "maxvar") }
func BenchmarkAblationFreq(b *testing.B)  { runExperimentBench(b, "ablation-freq", "mse") }
func BenchmarkAblationClip(b *testing.B)  { runExperimentBench(b, "ablation-clip", "mse") }
func BenchmarkAblationComm(b *testing.B)  { runExperimentBench(b, "ablation-comm", "bytes") }
