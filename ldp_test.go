package ldp

import (
	"math"
	"testing"
)

// The facade tests exercise the public API end to end; detailed behaviour
// is covered by the internal package suites.

func TestFacadeSingleAttribute(t *testing.T) {
	for _, newMech := range []func(float64) (Mechanism, error){
		func(e float64) (Mechanism, error) { return NewPiecewise(e) },
		func(e float64) (Mechanism, error) { return NewHybrid(e) },
		func(e float64) (Mechanism, error) { return NewDuchi(e) },
		func(e float64) (Mechanism, error) { return NewLaplace(e) },
		func(e float64) (Mechanism, error) { return NewSCDF(e) },
		func(e float64) (Mechanism, error) { return NewStaircase(e) },
	} {
		m, err := newMech(1)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRand(1)
		const n = 150000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += m.Perturb(0.3, r)
		}
		got := sum / n
		tol := 6 * math.Sqrt(m.WorstCaseVariance()/n)
		if math.Abs(got-0.3) > tol {
			t.Errorf("%s: mean %v, want 0.3 +- %v", m.Name(), got, tol)
		}
	}
}

func TestFacadeCollectorPipeline(t *testing.T) {
	s, err := NewSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical, Cardinality: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(s, 2, PM, OUE)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(col)
	r := NewRand(2)
	const n = 60000
	trueSum := 0.0
	counts := make([]float64, 3)
	for i := 0; i < n; i++ {
		tup := NewTuple(s)
		tup.Num[0] = -0.4
		tup.Cat[1] = i % 3
		trueSum += tup.Num[0]
		counts[tup.Cat[1]]++
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := agg.MeanEstimate(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-trueSum/n) > 0.1 {
		t.Errorf("mean estimate %v, want %v", mean, trueSum/n)
	}
	freqs, err := agg.FreqEstimates(1)
	if err != nil {
		t.Fatal(err)
	}
	for v, f := range freqs {
		if math.Abs(f-counts[v]/n) > 0.1 {
			t.Errorf("freq[%d] = %v, want %v", v, f, counts[v]/n)
		}
	}
}

func TestFacadeWireRoundTrip(t *testing.T) {
	s, err := NewSchema(Attribute{Name: "x", Kind: Numeric})
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(s, 1, HM, OUE)
	if err != nil {
		t.Fatal(err)
	}
	tup := NewTuple(s)
	tup.Num[0] = 0.5
	rep, err := col.Perturb(tup, NewRand(3))
	if err != nil {
		t.Fatal(err)
	}

	// Legacy v1 frames still round-trip through the deprecated shims and
	// decode through the unified envelope decoder as joint reports.
	legacy := EncodeCollectorReport(rep)
	back, err := DecodeCollectorReport(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Value != rep.Entries[0].Value {
		t.Error("legacy wire round trip mismatch")
	}
	unified, err := DecodeReport(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if unified.Task != TaskJoint || unified.Entries[0].Value != rep.Entries[0].Value {
		t.Errorf("legacy frame decoded as %v", unified.Task)
	}

	// The unified envelope round-trips pipeline reports.
	p, err := New(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := p.Randomize(tup, NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeReport(prep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != TaskMean || len(got.Entries) != 1 || got.Entries[0].Value != prep.Entries[0].Value {
		t.Error("envelope round trip mismatch")
	}
}

func TestFacadeConstants(t *testing.T) {
	if math.Abs(EpsStar()-0.61) > 0.01 {
		t.Errorf("EpsStar = %v", EpsStar())
	}
	if math.Abs(EpsSharp()-1.29) > 0.01 {
		t.Errorf("EpsSharp = %v", EpsSharp())
	}
	if KFor(5, 10) != 2 {
		t.Errorf("KFor(5,10) = %d", KFor(5, 10))
	}
}

func TestFacadeStreamsIndependent(t *testing.T) {
	a, b := NewRandStream(1, 0), NewRandStream(1, 1)
	if a.Uint64() == b.Uint64() {
		t.Error("streams should differ")
	}
}
