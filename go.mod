module ldp

go 1.24
