package ldp

import (
	"math"
	"testing"
)

func TestFacadeRangeQueries(t *testing.T) {
	sch, err := NewSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "y", Kind: Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewRangeCollector(sch, 1, RangeConfig{Buckets: 32, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	agg := NewRangeAggregator(col)

	const n = 20_000
	inX := 0.0
	for i := 0; i < n; i++ {
		r := NewRandStream(13, uint64(i))
		tup := NewTuple(sch)
		tup.Num[0] = r.Float64()*2 - 1
		tup.Num[1] = r.Float64()*2 - 1
		if tup.Num[0] >= -0.5 && tup.Num[0] <= 0.5 {
			inX++
		}
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}

		// Wire round trip preserves the report.
		back, err := DecodeRangeReport(EncodeRangeReport(rep))
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind != rep.Kind {
			t.Fatal("wire round trip changed report kind")
		}
	}

	got, err := agg.Range1D(0, -0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-inX/n) > 0.2 {
		t.Errorf("Range1D = %.4f, true %.4f", got, inX/n)
	}
	got2, err := agg.Range2D(0, 1, -1, 1, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2-1) > 1e-9 {
		t.Errorf("whole-square Range2D = %v, want 1", got2)
	}
}
