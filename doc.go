// Package ldp is a Go implementation of "Collecting and Analyzing
// Multidimensional Data with Local Differential Privacy" (Wang et al.,
// ICDE 2019): the Piecewise Mechanism (PM) and Hybrid Mechanism (HM) for
// numeric data, the attribute-sampling collector for multidimensional
// records mixing numeric and categorical attributes (Algorithm 4), the
// frequency oracles and baseline mechanisms the paper evaluates against,
// and an LDP-compliant stochastic gradient descent for linear regression,
// logistic regression and SVM classification.
//
// This root package is the public facade: it re-exports the implementation
// packages under internal/ as a single coherent API. Quick tour:
//
//	m, _ := ldp.NewPiecewise(1.0)           // 1-D mechanism at eps = 1
//	r := ldp.NewRand(42)
//	noisy := m.Perturb(0.25, r)              // unbiased, in [-C, C]
//
//	// Multidimensional collection (Algorithm 4):
//	col, _ := ldp.NewCollector(schema, 1.0, ldp.PM, ldp.OUE)
//	agg := ldp.NewAggregator(col)
//	rep, _ := col.Perturb(tuple, r)          // on the user's device
//	_ = agg.Add(rep)                         // at the aggregator
//	means := agg.MeanEstimates()
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/ldpbench for the harness that regenerates every table and figure of
// the paper's evaluation.
package ldp
