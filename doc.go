// Package ldp is a Go implementation of "Collecting and Analyzing
// Multidimensional Data with Local Differential Privacy" (Wang et al.,
// ICDE 2019), grown into a unified analytics pipeline: the Piecewise
// Mechanism (PM) and Hybrid Mechanism (HM) for numeric data, the
// attribute-sampling collector for multidimensional records (Algorithm 4),
// frequency oracles (OUE, SUE, GRR), 1-D/2-D range queries over
// hierarchical intervals and grids, and an LDP-compliant stochastic
// gradient descent.
//
// The primary API is the task-based Pipeline: one object routes each user
// to a mean, frequency, or range task, randomizes their record locally
// under the full per-user budget eps, and aggregates every task's reports
// into one sharded, concurrently-ingestible state that answers every
// query kind.
//
//	sch, _ := ldp.NewSchema(
//	    ldp.Attribute{Name: "age", Kind: ldp.Numeric},
//	    ldp.Attribute{Name: "gender", Kind: ldp.Categorical, Cardinality: 2},
//	)
//	p, _ := ldp.New(sch, 1.0, ldp.WithRange(ldp.RangeConfig{}), ldp.WithShards(8))
//
//	rep, _ := p.Randomize(tuple, ldp.NewRand(1)) // on the user's device
//	_ = p.Add(rep)                               // at the aggregator
//
//	res := p.View() // epoch-cached; p.Snapshot() forces a rebuild
//	mean, _ := res.Mean("age")
//	freqs, _ := res.Freq("gender")
//	mass, _ := res.Range(ldp.RangeQuery{Attr: "age", Lo: -0.4, Hi: -0.2})
//
// Reports travel as one versioned, task-multiplexed wire envelope
// (EncodeReport/DecodeReport); legacy v1 frames from the pre-pipeline API
// still decode and still fold into a Pipeline, so old clients and report
// logs survive the migration. Over HTTP, NewPipelineServer serves ingest
// and queries on a single /v1/report + /v1/query route pair and
// NewPipelineClient submits batches with context support.
//
// The ingest hot path is batch-first: a buffer of concatenated frames
// decodes into a pooled columnar ReportBatch (DecodeReportBatch, with
// GetBatch/PutBatch recycling buffers) and Pipeline.AddBatch validates
// the whole batch up front, then folds one contiguous span per shard
// under a single lock acquisition — zero allocations per report in the
// steady state. Per-report Add remains as a thin wrapper; AppendReport
// assembles batch uploads client-side without per-report allocation.
//
// The query hot path is epoch-cached: every fold advances a per-shard
// atomic epoch, and Pipeline.View serves one immutable memoized Result
// behind an atomic pointer for as long as the summed ingest watermark
// stays within the staleness bound (WithQueryStaleness; the default bound
// of 0 reports keeps queries exact). A cached hit is lock-free and
// allocation-free; a stale view is rebuilt single-flight, so a query
// stampede triggers at most one snapshot — and the rebuild itself is
// incremental by default: every fold marks the components it touched
// dirty under its shard lock (per-attribute count columns, hierarchy
// levels, grids), and the builder folds only the dirty shards' count
// deltas into the previous view's immutable state, re-debiasing only
// changed attributes and re-running Norm-Sub only on changed grids and
// levels, skipping clean shards without taking their locks. When the
// delta since the previous view exceeds a crossover fraction of the
// watermark (WithIncrementalView, default 0.25) the rebuild falls back
// to a full snapshot parallelized across shards. Either way the result
// is bit-identical to Snapshot at the same watermark — incremental
// maintenance changes the cost of a rebuild (delta-proportional instead
// of domain-proportional), never its answers. Inside a Result, frequency
// estimates debias lazily per queried attribute from raw pooled support
// counts and the range state is precomputed once (interval-tree estimates
// plus Norm-Sub-consistent grids), so Mean/FreqView/Range are pure
// lookups. The HTTP layer keys pre-encoded JSON bodies and ETags on
// Result.Epoch: dashboards polling /v1/query (and SGD participants
// polling /v1/model) with If-None-Match get 304 Not Modified until the
// state actually changes.
//
// Federated LDP-SGD (the paper's Section V) is the pipeline's fourth
// task. A pipeline built with WithGradient grows a Trainer: the server
// publishes the current model (GET /v1/model when served over HTTP), each
// participating user computes the gradient of the loss on their own
// example, clips it per-coordinate to [-1, 1], and submits only its
// Algorithm-4 randomization — k of the d coordinates, each perturbed at
// eps/k and scaled by d/k — tagged with the training round. When a
// round's group fills, the Trainer averages the unbiased noisy gradients,
// takes one SGD step (beta <- beta - eta/sqrt(t) * avg), and publishes a
// fresh immutable model through an atomic pointer, so model reads never
// block ingest. Each user participates in exactly one round (the paper
// shows budget-splitting across rounds is strictly worse).
//
//	cfg := ldp.GradientConfig{Dim: d, Rounds: 20, GroupSize: 512, Eta: 1, Lambda: 1e-4}
//	p, _ := ldp.New(sch, eps, ldp.WithGradient(cfg))     // both sides
//	// server: ldp.NewPipelineServer(p, nil) serves /v1/model + /v1/report
//	// client:
//	sgd, _ := ldp.NewSGDClient(url, p, ldp.LogisticRegression, 1e-4)
//	round, ok, _ := sgd.Contribute(ctx, x, y, r)         // one user, one round
//
// The statistical guarantees are enforced by internal/stattest rather
// than eyeballed tolerances: mechanisms and estimators must be unbiased
// within 5 standard errors over seeded many-trial runs, empirical
// variances must match the paper's closed forms within a stated factor,
// and the federated path must reach within a fixed accuracy margin of
// the non-private SGD baseline (see the acceptance tests in
// internal/transport).
//
// The privacy claims themselves are audited black-box: internal/audit
// samples each randomizer on pairs of inputs, bins the outputs, and
// bounds every binned likelihood ratio with exact one-sided
// Clopper-Pearson confidence intervals — an empirical lower bound on
// the true eps that refutes an overclaimed budget without reading any
// mechanism internals. Auditors cover the mean mechanisms, frequency
// oracles, both range-report encodings, the gradient mechanism, and
// the full client wire path (Randomize -> envelope -> DecodeBatch),
// and the CI slow job pairs each with a deliberately broken variant
// that must be caught. Audit (the facade entry point) checks one
// numeric mechanism; `ldpbench -exp audit` plots eps_emp against the
// claimed eps across the sweep.
//
// Beyond one machine, deployments run as an edge→root tier: edge
// aggregators face users and periodically push versioned, checksummed
// snapshot deltas of their additive state to a root's POST /v1/merge
// (internal/cluster; cmd/ldpserver -mode edge|root). The protocol is
// exactly-once — per-edge monotone sequence numbers scoped by a root
// boot ID make retries idempotent, and edges resynchronize after a
// restart — so the root's estimates are bit-identical to a single node
// that ingested every report itself: fan-in multiplies ingest capacity
// without touching accuracy or the privacy analysis. Each accepted
// report can also be WAL-persisted before it folds (internal/reportlog,
// with group-commit fsync batching), and the forwarder syncs the log
// before every push, so an edge crash never loses a report the root has
// counted.
//
// The service degrades predictably under overload and partial failure.
// Mutating routes sit behind a bounded in-flight admission limiter
// (WithAdmission): excess requests are shed with 429 + Retry-After
// before their body is read, on an allocation-free path, and the
// shipped clients treat 429 as retryable with the hint as a backoff
// floor and a wall-clock cap (RetryPolicy.MaxElapsed). An edge whose
// root stops answering trips a circuit breaker (BreakerConfig) and
// degrades to cheap jittered probes instead of full snapshot pushes.
// GET /healthz and GET /readyz expose liveness and readiness
// (WithReadyChecks: draining, WAL health, breaker state), and
// cmd/ldpserver shuts down in order on SIGINT/SIGTERM — flip readiness,
// drain requests, final edge push, WAL commit last — so a clean restart
// never loses an acknowledged report. internal/chaos verifies all of it
// with seeded, deterministic fault injection: under injected drops,
// blackholed responses, 5xx storms, latency, and truncated bodies, the
// root's estimates must stay bit-identical to a no-fault run.
//
// Deployments observe themselves through a shared metrics registry
// (NewTelemetryRegistry): WithTelemetry instruments the pipeline's
// ingest, view-cache, and trainer state, WithServerTelemetry adds
// per-route HTTP metrics and a Prometheus GET /metrics route, and
// WithRequestLog emits structured per-request log lines. Telemetry
// follows the hot-path discipline of the rest of the system — per-batch
// counters, scrape-time reads of existing aggregator state, and no
// allocations on the instrumented ingest or cached-query paths (the
// instrumented benchmarks are pinned at 0 allocs/op in CI).
//
// The pre-pipeline constructors (NewCollector, NewAggregator, NewServer,
// NewRangeCollector, ...) remain as deprecated shims; see the MIGRATION
// section of the README for the mapping.
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/ldpbench for the harness that regenerates every table and figure of
// the paper's evaluation.
package ldp
