package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table1", "fig1", "fig11", "ablation-k"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestNoExperimentSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("want error when no experiment is selected")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig99", "-q"}, &buf); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunAnalyticExperimentText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1", "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MaxVarHM") || !strings.Contains(out, "HM < PM < Duchi") {
		t.Errorf("unexpected table1 output:\n%s", out)
	}
}

func TestRunTSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.tsv")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig1", "-format", "tsv", "-out", path, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "eps\tlaplace\tduchi\tpm\thm") {
		t.Errorf("TSV header missing:\n%s", string(data[:200]))
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig1,fig3", "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# fig1") || !strings.Contains(out, "# fig3") {
		t.Error("expected both fig1 and fig3 sections")
	}
}

func TestRunWithCustomEps(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "ablation-alpha", "-eps", "1,2", "-q"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseEpsList(t *testing.T) {
	got, err := parseEpsList("0.5, 1,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.5 || got[1] != 1 || got[2] != 4 {
		t.Errorf("parseEpsList = %v", got)
	}
	if _, err := parseEpsList("abc"); err == nil {
		t.Error("want error for non-numeric eps")
	}
	if _, err := parseEpsList("1,-2"); err == nil {
		t.Error("want error for non-positive eps")
	}
}

func TestOrDefault(t *testing.T) {
	if orDefault(0, 5) != 5 || orDefault(3, 5) != 3 || orDefault(-1, 5) != 5 {
		t.Error("orDefault wrong")
	}
}
