// Command ldpbench regenerates the tables and figures of the paper's
// evaluation (Section VI) and the design-choice ablations.
//
// Usage:
//
//	ldpbench -list
//	ldpbench -exp fig4 [-n 200000] [-runs 10] [-eps 0.5,1,2,4] [-format tsv]
//	ldpbench -exp all
//
// Results print to stdout (or -out FILE) as aligned text or TSV. See
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ldp/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ldpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ldpbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "", "experiment to run (e.g. fig4, table1, ablation-k, or 'all')")
		n        = fs.Int("n", 0, "population size per run (0 = default)")
		runs     = fs.Int("runs", 0, "repetitions to average (0 = default)")
		seed     = fs.Uint64("seed", 0, "base PRNG seed (0 = default)")
		workers  = fs.Int("workers", 0, "max concurrent runs (0 = GOMAXPROCS)")
		epsList  = fs.String("eps", "", "comma-separated privacy budgets (default 0.5,1,2,4)")
		eps1     = fs.Float64("eps1", 0, "fixed budget for non-eps-axis figures (default 1)")
		ermUsers = fs.Int("ermusers", 0, "dataset size for SGD experiments (0 = default)")
		splits   = fs.Int("splits", 0, "train/test splits per SGD configuration (0 = default)")
		format   = fs.String("format", "text", "output format: text or tsv")
		out      = fs.String("out", "", "write output to this file instead of stdout")
		jsonOut  = fs.String("json", "", "additionally write all result tables to this file as JSON")
		quiet    = fs.Bool("q", false, "suppress progress messages on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range experiment.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", r.Name, r.Desc)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("no experiment selected; use -exp NAME or -list")
	}

	opts := experiment.Defaults()
	opts.N = orDefault(*n, opts.N)
	opts.Runs = orDefault(*runs, opts.Runs)
	opts.ERMUsers = orDefault(*ermUsers, opts.ERMUsers)
	opts.Splits = orDefault(*splits, opts.Splits)
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *eps1 > 0 {
		opts.Eps = *eps1
	}
	if *epsList != "" {
		parsed, err := parseEpsList(*epsList)
		if err != nil {
			return err
		}
		opts.EpsList = parsed
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	var runners []experiment.Runner
	if *exp == "all" {
		runners = experiment.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			r, err := experiment.Get(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
	}

	var allTables []experiment.Table
	for _, r := range runners {
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s...\n", r.Name)
		}
		tables, err := r.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", r.Name, time.Since(start).Round(time.Millisecond))
		}
		allTables = append(allTables, tables...)
		for _, tb := range tables {
			var err error
			if *format == "tsv" {
				_, err = fmt.Fprintf(w, "# %s — %s\n", tb.ID, tb.Title)
				if err == nil {
					err = experiment.RenderTSV(w, tb)
				}
				if err == nil {
					_, err = fmt.Fprintln(w)
				}
			} else {
				err = experiment.Render(w, tb)
			}
			if err != nil {
				return err
			}
		}
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(allTables, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func parseEpsList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad eps value %q: %w", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("eps must be positive, got %v", v)
		}
		out = append(out, v)
	}
	return out, nil
}
