// Command ldpgen generates synthetic census datasets (the BR-like and
// MX-like populations described in DESIGN.md) as CSV files.
//
// Usage:
//
//	ldpgen -dataset br -n 100000 -seed 1 -out br.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ldp/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ldpgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ldpgen", flag.ContinueOnError)
	var (
		name = fs.String("dataset", "br", "dataset to generate: br or mx")
		n    = fs.Int("n", 100000, "number of records")
		seed = fs.Uint64("seed", 1, "PRNG seed")
		out  = fs.String("out", "", "output CSV path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var c *dataset.Census
	switch *name {
	case "br":
		c = dataset.NewBR()
	case "mx":
		c = dataset.NewMX()
	default:
		return fmt.Errorf("unknown dataset %q (want br or mx)", *name)
	}
	if *n <= 0 {
		return fmt.Errorf("n must be positive, got %d", *n)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, c, *n, *seed)
}
