package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateBRToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "br.csv")
	if err := run([]string{"-dataset", "br", "-n", "25", "-seed", "3", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 26 { // header + 25 rows
		t.Fatalf("got %d lines, want 26", len(lines))
	}
	if !strings.HasPrefix(lines[0], "age,income,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")
	for _, p := range []string{a, b} {
		if err := run([]string{"-dataset", "mx", "-n", "10", "-seed", "7", "-out", p}); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("same seed must generate identical CSVs")
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-dataset", "xx"}); err == nil {
		t.Error("want error for unknown dataset")
	}
	if err := run([]string{"-dataset", "br", "-n", "0"}); err == nil {
		t.Error("want error for n=0")
	}
}
