// Command ldpclient simulates a population of users submitting randomized
// reports to a running ldpserver instance through the unified pipeline:
// each simulated user is routed to one task (mean, frequency, or range),
// randomizes one synthetic census record locally, and only the perturbed
// envelope frame leaves the process. Reports upload in batches over a
// configurable number of workers.
//
// Usage:
//
//	ldpclient -addr http://127.0.0.1:8080 -dataset br -eps 1 -n 10000 -batch 100
//	ldpclient -addr http://127.0.0.1:8080 -dataset br -eps 2 -n 10000 -sgd -sgdrounds 20 -sgdgroup 512
//
// With -sgd each simulated user instead participates in one federated
// LDP-SGD round: they poll the server's model, compute the logistic-loss
// gradient on their own synthetic census example, and submit only its
// clipped eps-LDP randomization. The dataset, eps, and -range/-sgd*
// flags must match the server's configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ldpclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ldpclient", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "aggregator base URL")
		name    = fs.String("dataset", "br", "population to simulate: br or mx")
		eps     = fs.Float64("eps", 1, "privacy budget")
		n       = fs.Int("n", 10000, "number of users to simulate")
		seed    = fs.Uint64("seed", 1, "base PRNG seed")
		workers = fs.Int("workers", 8, "concurrent uploaders")
		batch   = fs.Int("batch", 100, "reports per upload request")
		rangeOn = fs.Bool("range", false, "register the range-query task (must match the server)")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request timeout")
		sgdOn   = fs.Bool("sgd", false, "participate in federated LDP-SGD instead of reporting tuples")
		sgdRnds = fs.Int("sgdrounds", 20, "federated SGD rounds (must match the server)")
		sgdGrp  = fs.Int("sgdgroup", 512, "gradient reports per round (must match the server)")
		sgdEta  = fs.Float64("sgdeta", 1.0, "SGD learning-rate scale (must match the server)")
		sgdLam  = fs.Float64("sgdlambda", 1e-4, "L2 regularization weight")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var c *dataset.Census
	switch *name {
	case "br":
		c = dataset.NewBR()
	case "mx":
		c = dataset.NewMX()
	default:
		return fmt.Errorf("unknown dataset %q (want br or mx)", *name)
	}
	var opts []pipeline.Option
	if *rangeOn {
		opts = append(opts, pipeline.WithRange(rangequery.Config{}))
	}
	if *sgdOn {
		opts = append(opts, pipeline.WithGradient(pipeline.GradientConfig{
			Dim:       c.ERMDim(),
			Rounds:    *sgdRnds,
			GroupSize: *sgdGrp,
			Eta:       *sgdEta,
			Lambda:    *sgdLam,
		}))
	}
	p, err := pipeline.New(c.Schema(), *eps, opts...)
	if err != nil {
		return err
	}
	if *batch < 1 {
		*batch = 1
	}
	if *workers < 1 {
		*workers = 1
	}
	if *sgdOn {
		return runSGD(c, p, *addr, *n, *seed, *workers, *sgdLam, *timeout)
	}

	ctx := context.Background()
	var sent, failed atomic.Int64
	var wg sync.WaitGroup
	batches := make(chan [2]int, 64) // [start, end) user-id ranges
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := transport.NewPipelineClient(*addr, p, transport.WithTimeout(*timeout))
			for span := range batches {
				// One stream per user keeps results reproducible no
				// matter how work lands on workers. The batch PRNG that
				// drives task routing and perturbation lives in a
				// disjoint stream index space (high bit set, user ids
				// are < n), so the privacy noise is independent of every
				// user's data-generating stream.
				tuples := make([]schema.Tuple, 0, span[1]-span[0])
				r := rng.NewStream(*seed, 1<<63|uint64(span[0]))
				for id := span[0]; id < span[1]; id++ {
					tuples = append(tuples, c.Tuple(rng.NewStream(*seed, uint64(id))))
				}
				if err := client.SendBatch(ctx, tuples, r); err != nil {
					if failed.Add(int64(len(tuples))) <= 3*int64(*batch) {
						log.Printf("users [%d,%d): %v", span[0], span[1], err)
					}
					continue
				}
				sent.Add(int64(len(tuples)))
			}
		}(w)
	}
	for start := 0; start < *n; start += *batch {
		end := start + *batch
		if end > *n {
			end = *n
		}
		batches <- [2]int{start, end}
	}
	close(batches)
	wg.Wait()
	log.Printf("sent %d reports (%d failed)", sent.Load(), failed.Load())
	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d reports failed", failed.Load(), *n)
	}
	return nil
}

// runSGD simulates n federated SGD participants: each user polls the
// model once, computes the logistic-loss gradient on their own synthetic
// example, and submits its clipped randomization. Users whose poll finds
// training finished contribute nothing (reported as "idle").
func runSGD(c *dataset.Census, p *pipeline.Pipeline, addr string, n int, seed uint64, workers int, lambda float64, timeout time.Duration) error {
	ctx := context.Background()
	var sent, idle, failed atomic.Int64
	var wg sync.WaitGroup
	users := make(chan int, 256)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sgd, err := transport.NewSGDClient(addr, p, erm.LogisticRegression, lambda, transport.WithTimeout(timeout))
			if err != nil {
				log.Print(err)
				return
			}
			for id := range users {
				// The example stream is the user's data; the disjoint
				// high-bit stream drives the privacy noise.
				ex := c.EncodeERM(c.Tuple(rng.NewStream(seed, uint64(id))))
				_, ok, err := sgd.Contribute(ctx, ex.X, ex.YCls, rng.NewStream(seed, 1<<63|uint64(id)))
				switch {
				case err != nil:
					if failed.Add(1) <= 3 {
						log.Printf("user %d: %v", id, err)
					}
				case !ok:
					idle.Add(1)
				default:
					sent.Add(1)
				}
			}
		}()
	}
	for id := 0; id < n; id++ {
		users <- id
	}
	close(users)
	wg.Wait()
	log.Printf("contributed %d gradients (%d idle after training finished, %d failed)",
		sent.Load(), idle.Load(), failed.Load())
	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d gradient contributions failed", failed.Load(), n)
	}
	return nil
}
