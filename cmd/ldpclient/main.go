// Command ldpclient simulates a population of users submitting randomized
// reports to a running ldpserver instance.
//
// Usage:
//
//	ldpclient -addr http://127.0.0.1:8080 -dataset br -eps 1 -n 10000
//
// The dataset and eps flags must match the server's configuration. Each
// simulated user derives an independent randomness stream from the seed,
// perturbs one synthetic census record locally, and uploads only the
// perturbed frame.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ldpclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ldpclient", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "aggregator base URL")
		name    = fs.String("dataset", "br", "population to simulate: br or mx")
		eps     = fs.Float64("eps", 1, "privacy budget")
		n       = fs.Int("n", 10000, "number of users to simulate")
		seed    = fs.Uint64("seed", 1, "base PRNG seed")
		workers = fs.Int("workers", 8, "concurrent uploaders")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var c *dataset.Census
	switch *name {
	case "br":
		c = dataset.NewBR()
	case "mx":
		c = dataset.NewMX()
	default:
		return fmt.Errorf("unknown dataset %q (want br or mx)", *name)
	}
	pm := func(e float64) (mech.Mechanism, error) { return core.NewPiecewise(e) }
	oue := func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) }
	col, err := core.NewCollector(c.Schema(), *eps, pm, oue)
	if err != nil {
		return err
	}

	var sent, failed atomic.Int64
	var wg sync.WaitGroup
	ids := make(chan uint64, 1024)
	if *workers < 1 {
		*workers = 1
	}
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := transport.NewClient(*addr, col, nil)
			for id := range ids {
				r := rng.NewStream(*seed, id)
				if err := client.SendTuple(c.Tuple(r), r); err != nil {
					if failed.Add(1) <= 3 {
						log.Printf("user %d: %v", id, err)
					}
					continue
				}
				sent.Add(1)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		ids <- uint64(i)
	}
	close(ids)
	wg.Wait()
	log.Printf("sent %d reports (%d failed)", sent.Load(), failed.Load())
	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d reports failed", failed.Load(), *n)
	}
	return nil
}
