package main

import (
	"net/http/httptest"
	"testing"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/transport"
)

func TestRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestReportsUploadFailures(t *testing.T) {
	// Nothing listens on this port: every send fails and run() reports it.
	err := run([]string{"-dataset", "br", "-n", "3", "-workers", "2", "-addr", "http://127.0.0.1:1"})
	if err == nil {
		t.Error("want error when the aggregator is unreachable")
	}
}

func TestUploadsToLiveServer(t *testing.T) {
	c := dataset.NewBR()
	pm := func(e float64) (mech.Mechanism, error) { return core.NewPiecewise(e) }
	oue := func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) }
	col, err := core.NewCollector(c.Schema(), 1, pm, oue)
	if err != nil {
		t.Fatal(err)
	}
	agg := core.NewAggregator(col)
	srv := httptest.NewServer(transport.NewServer(agg, nil))
	defer srv.Close()

	if err := run([]string{"-dataset", "br", "-eps", "1", "-n", "50", "-addr", srv.URL}); err != nil {
		t.Fatal(err)
	}
	if agg.N() != 50 {
		t.Errorf("server received %d reports, want 50", agg.N())
	}
}
