package main

import (
	"net/http/httptest"
	"testing"

	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/transport"
)

func TestRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestReportsUploadFailures(t *testing.T) {
	// Nothing listens on this port: every send fails and run() reports it.
	err := run([]string{"-dataset", "br", "-n", "3", "-workers", "2", "-addr", "http://127.0.0.1:1"})
	if err == nil {
		t.Error("want error when the aggregator is unreachable")
	}
}

func TestUploadsToLiveServer(t *testing.T) {
	c := dataset.NewBR()
	p, err := pipeline.New(c.Schema(), 1, pipeline.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(transport.NewPipelineServer(p, nil))
	defer srv.Close()

	// A batch size that does not divide n exercises the tail batch.
	if err := run([]string{"-dataset", "br", "-eps", "1", "-n", "50", "-batch", "7", "-addr", srv.URL}); err != nil {
		t.Fatal(err)
	}
	if p.N() != 50 {
		t.Errorf("server received %d reports, want 50", p.N())
	}
}
