package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/transport"
)

// buildServer compiles the real ldpserver binary; the lifecycle tests
// exercise actual POSIX signal delivery, not an in-process stand-in.
func buildServer(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("lifecycle tests use POSIX signals")
	}
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "ldpserver")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port. The listener is closed before the
// server starts, so there is a small reuse race — acceptable for a test
// that binds immediately after.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitReady polls /readyz until the server answers 200 (the readiness
// probe doubles as the "process is up" gate).
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("server at %s never became ready", base)
}

// statsN reads the aggregate report count off /v1/stats.
func statsN(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		N int64 `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.N
}

// TestSIGTERMDrainsAndLosesNothing is the clean-restart durability
// contract end to end, against the real binary: ingest acked reports
// into a group-commit WAL whose interval (1h) guarantees nothing is
// durable until a flush, SIGTERM the process, restart it, and require
// every acked report back. Only the shutdown path's ordered
// drain-then-commit makes this pass — an unclean kill would lose the
// entire buffer.
func TestSIGTERMDrainsAndLosesNothing(t *testing.T) {
	bin := buildServer(t)
	logdir := filepath.Join(t.TempDir(), "wal")
	addr := freeAddr(t)
	base := "http://" + addr

	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr, "-dataset", "br", "-eps", "1",
			"-logdir", logdir,
			"-log-sync", "1h", "-log-sync-bytes", fmt.Sprint(1<<30),
			"-drain", "5s", "-log-level", "warn",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	sigterm := func(cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("server did not exit cleanly on SIGTERM: %v", err)
			}
		case <-time.After(20 * time.Second):
			cmd.Process.Kill()
			t.Fatal("server did not exit within 20s of SIGTERM")
		}
	}

	cmd := start()
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	waitReady(t, base)

	// Ingest through the public client; every SendReport that returns nil
	// was acked with a 200 and must survive the restart.
	c := dataset.NewBR()
	p, err := pipeline.New(c.Schema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewPipelineClient(base, p)
	const n = 200
	ctx := context.Background()
	for i := 0; i < n; i++ {
		r := rng.NewStream(99, uint64(i))
		rep, err := p.Randomize(c.Tuple(r), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.SendReport(ctx, rep); err != nil {
			t.Fatalf("send report %d: %v", i, err)
		}
	}
	if got := statsN(t, base); got != n {
		t.Fatalf("pre-restart stats n = %d, want %d", got, n)
	}

	sigterm(cmd)

	cmd = start()
	waitReady(t, base)
	if got := statsN(t, base); got != n {
		t.Errorf("post-restart stats n = %d, want %d (acked reports lost across clean restart)", got, n)
	}
	sigterm(cmd)
}

// TestSIGTERMEdgeFinalPush checks the edge half of the lifecycle: an
// edge that ingested reports but whose push interval (1h) never fired
// still delivers everything to the root during shutdown, via the final
// best-effort push.
func TestSIGTERMEdgeFinalPush(t *testing.T) {
	bin := buildServer(t)
	rootAddr, edgeAddr := freeAddr(t), freeAddr(t)
	rootBase, edgeBase := "http://"+rootAddr, "http://"+edgeAddr
	rootLog := filepath.Join(t.TempDir(), "rootwal")
	edgeLog := filepath.Join(t.TempDir(), "edgewal")

	root := exec.Command(bin,
		"-addr", rootAddr, "-dataset", "br", "-eps", "1",
		"-logdir", rootLog, "-drain", "5s", "-log-level", "warn")
	root.Stdout, root.Stderr = os.Stderr, os.Stderr
	if err := root.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		root.Process.Kill()
		root.Wait()
	}()
	waitReady(t, rootBase)

	edge := exec.Command(bin,
		"-addr", edgeAddr, "-dataset", "br", "-eps", "1",
		"-mode", "edge", "-push-to", rootBase, "-edge-id", "edge-life",
		"-push-interval", "1h",
		"-logdir", edgeLog, "-drain", "5s", "-log-level", "warn")
	edge.Stdout, edge.Stderr = os.Stderr, os.Stderr
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if edge.ProcessState == nil {
			edge.Process.Kill()
			edge.Wait()
		}
	}()
	waitReady(t, edgeBase)

	c := dataset.NewBR()
	p, err := pipeline.New(c.Schema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewPipelineClient(edgeBase, p)
	const n = 120
	ctx := context.Background()
	for i := 0; i < n; i++ {
		r := rng.NewStream(7, uint64(i))
		rep, err := p.Randomize(c.Tuple(r), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.SendReport(ctx, rep); err != nil {
			t.Fatalf("send report %d: %v", i, err)
		}
	}
	if got := statsN(t, rootBase); got != 0 {
		t.Fatalf("root has %d reports before any push (interval is 1h)", got)
	}

	if err := edge.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- edge.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("edge did not exit cleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		edge.Process.Kill()
		t.Fatal("edge did not exit within 20s of SIGTERM")
	}

	if got := statsN(t, rootBase); got != n {
		t.Errorf("root has %d reports after edge shutdown, want %d (final push missed)", got, n)
	}
}
