// Command ldpserver runs the unified aggregator service: it accepts
// randomized reports for every task (mean, frequency, range — plus legacy
// v1 frames) on one route, optionally persists them to a crash-recoverable
// report log, and answers every query kind on one route.
//
// Usage:
//
//	ldpserver -addr :8080 -dataset br -eps 1 -shards 8 -range -logdir /var/lib/ldp
//	ldpserver -addr :8080 -dataset br -eps 2 -sgd -sgdrounds 20 -sgdgroup 512
//
// The schema (and the privacy budget, which fixes the randomizer debiasing
// parameters) must match what the clients use. On startup, any existing
// report log is recovered and replayed so estimates survive restarts.
//
// With -sgd the server additionally coordinates federated LDP-SGD over
// the dataset's ERM feature encoding: it publishes the model on
// GET /v1/model, accepts gradient reports on the shared /v1/report
// route, and advances the model whenever a round's group fills.
//
//	POST /v1/report   one or more report frames (v2 envelope or legacy v1)
//	GET  /v1/query    ?kind=stats | mean[&attr=] | freq&attr= | range&attr=&lo=&hi=[&attr2=&lo2=&hi2=]
//	GET  /v1/model    federated SGD model state (-sgd only)
//
// Queries are answered from an epoch-cached snapshot with pre-encoded
// JSON bodies and epoch-keyed ETags (If-None-Match gets 304 while the
// view is unchanged); -query-staleness and -query-maxage bound how far
// the cached view may trail ingest before a query rebuilds it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/reportlog"
	"ldp/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ldpserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ldpserver", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		name     = fs.String("dataset", "br", "schema to serve: br or mx")
		eps      = fs.Float64("eps", 1, "privacy budget the clients use")
		shards   = fs.Int("shards", runtime.GOMAXPROCS(0), "aggregation shards (ingest concurrency)")
		rangeOn  = fs.Bool("range", false, "register the range-query task")
		buckets  = fs.Int("buckets", 0, "range hierarchy buckets (power of two; 0 = 256)")
		gridCell = fs.Int("gridcells", 0, "range 2-D grid resolution per axis (0 = 8)")
		logdir   = fs.String("logdir", "", "report log directory (empty = no persistence)")
		qStale   = fs.Int64("query-staleness", 0, "serve cached query views trailing ingest by up to this many reports (0 = exact)")
		qMaxAge  = fs.Duration("query-maxage", 0, "rebuild cached query views older than this (0 = no age bound)")
		sgdOn    = fs.Bool("sgd", false, "register the federated LDP-SGD gradient task")
		sgdRnds  = fs.Int("sgdrounds", 20, "federated SGD rounds")
		sgdGroup = fs.Int("sgdgroup", 512, "gradient reports per SGD round")
		sgdEta   = fs.Float64("sgdeta", 1.0, "SGD learning-rate scale (gamma_t = eta/sqrt(t))")
		sgdLam   = fs.Float64("sgdlambda", 1e-4, "L2 regularization weight clients train with")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var c *dataset.Census
	switch *name {
	case "br":
		c = dataset.NewBR()
	case "mx":
		c = dataset.NewMX()
	default:
		return fmt.Errorf("unknown dataset %q (want br or mx)", *name)
	}

	opts := []pipeline.Option{
		pipeline.WithShards(*shards),
		pipeline.WithQueryStaleness(*qStale, *qMaxAge),
	}
	if *rangeOn {
		opts = append(opts, pipeline.WithRange(rangequery.Config{Buckets: *buckets, GridCells: *gridCell}))
	}
	if *sgdOn {
		opts = append(opts, pipeline.WithGradient(pipeline.GradientConfig{
			Dim:       c.ERMDim(),
			Rounds:    *sgdRnds,
			GroupSize: *sgdGroup,
			Eta:       *sgdEta,
			Lambda:    *sgdLam,
		}))
	}
	p, err := pipeline.New(c.Schema(), *eps, opts...)
	if err != nil {
		return err
	}

	var sink transport.Sink
	if *logdir != "" {
		stats, err := reportlog.Recover(*logdir)
		if err != nil {
			return fmt.Errorf("recover report log: %w", err)
		}
		if stats.Records > 0 {
			n, err := transport.ReplayPipeline(p, func(fn func([]byte) error) error {
				_, err := reportlog.Replay(*logdir, fn)
				return err
			})
			if err != nil {
				return fmt.Errorf("replay report log: %w", err)
			}
			log.Printf("replayed %d reports from %s", n, *logdir)
		}
		w, err := reportlog.Open(*logdir, 64<<20)
		if err != nil {
			return err
		}
		defer w.Close()
		sink = w
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           transport.NewPipelineServer(p, sink),
		ReadHeaderTimeout: 5 * time.Second,
	}
	tasks := ""
	for _, t := range p.Tasks() {
		if tasks != "" {
			tasks += ","
		}
		tasks += t.Name()
	}
	log.Printf("unified aggregator for %q (d=%d, eps=%g, tasks=%s, shards=%d) listening on %s",
		*name, c.Schema().Dim(), *eps, tasks, p.Shards(), *addr)
	return srv.ListenAndServe()
}
