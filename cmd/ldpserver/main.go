// Command ldpserver runs the unified aggregator service: it accepts
// randomized reports for every task (mean, frequency, range — plus legacy
// v1 frames) on one route, optionally persists them to a crash-recoverable
// report log, and answers every query kind on one route.
//
// Usage:
//
//	ldpserver -addr :8080 -dataset br -eps 1 -shards 8 -range -logdir /var/lib/ldp
//	ldpserver -addr :8080 -dataset br -eps 2 -sgd -sgdrounds 20 -sgdgroup 512
//	ldpserver -addr :8080 -dataset br -debug-addr 127.0.0.1:6060 -log-format json
//	ldpserver -addr :8081 -dataset br -mode edge -push-to http://root:8080 -push-interval 5s
//
// Clustering: -mode root (the default) additionally accepts cluster
// fan-in on POST /v1/merge; -mode edge starts a cluster.Forwarder that
// periodically ships the local pipeline's aggregate delta to the root at
// -push-to, identified by -edge-id (exactly-once, survives both edge and
// root restarts; the edge keeps answering its own /v1/query locally).
// Every server runs the same report/query routes regardless of mode.
// With -logdir, -log-sync switches the report log to group commit: one
// fsync per interval (or per -log-sync-bytes buffered bytes) instead of
// unsynced per-record writes.
//
// The schema (and the privacy budget, which fixes the randomizer debiasing
// parameters) must match what the clients use. On startup, any existing
// report log is recovered and replayed so estimates survive restarts.
//
// With -sgd the server additionally coordinates federated LDP-SGD over
// the dataset's ERM feature encoding: it publishes the model on
// GET /v1/model, accepts gradient reports on the shared /v1/report
// route, and advances the model whenever a round's group fills.
//
//	POST /v1/report   one or more report frames (v2 envelope or legacy v1)
//	GET  /v1/query    ?kind=stats | mean[&attr=] | freq&attr= | range&attr=&lo=&hi=[&attr2=&lo2=&hi2=]
//	GET  /v1/stats    aggregate report counts, ETag-cached on the watermark
//	GET  /v1/model    federated SGD model state (-sgd only)
//	GET  /healthz     liveness: 200 while the process runs
//	GET  /readyz      readiness: 503 while draining, the WAL is failing, or an edge's push breaker is open
//	GET  /metrics     Prometheus text exposition of every subsystem
//
// Operational resilience: mutating routes run behind an admission
// limiter (-max-inflight, -request-timeout) that sheds excess load with
// 429 + Retry-After before reading a byte of body. SIGINT/SIGTERM
// triggers a graceful shutdown: readiness flips to 503, in-flight
// requests drain for up to -drain, an edge makes one final best-effort
// push to its root, and the report log commits and closes last — so a
// clean restart never loses an acknowledged report, even under
// -log-sync group commit. A second signal during the drain kills the
// process immediately. -push-chaos injects deterministic faults into the
// edge push path for resilience testing (see internal/chaos).
//
// Queries are answered from an epoch-cached snapshot with pre-encoded
// JSON bodies and epoch-keyed ETags (If-None-Match gets 304 while the
// view is unchanged); -query-staleness and -query-maxage bound how far
// the cached view may trail ingest before a query rebuilds it.
//
// Observability: the server always registers its telemetry (the hot paths
// stay allocation-free either way) and serves it on /metrics. Logs are
// structured (log/slog); -log-level debug adds one line per request and
// -log-format json switches to JSON lines. -debug-addr starts a second,
// operator-only listener serving net/http/pprof under /debug/pprof/,
// expvar under /debug/vars (the registry is published as the "ldp" var),
// and a /metrics alias — keep it bound to localhost; nothing on it is
// meant for report-submitting clients.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"ldp/internal/chaos"
	"ldp/internal/cluster"
	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/reportlog"
	"ldp/internal/telemetry"
	"ldp/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ldpserver:", err)
		os.Exit(1)
	}
}

// publishExpvar guards the process-global expvar name: run is re-entered
// by tests, and expvar.Publish panics on duplicates.
var publishExpvar sync.Once

// newLogger builds the process logger from the -log-level/-log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// debugMux assembles the operator-only debug handler: pprof, expvar, and
// the metrics exposition on one explicit mux (the point of -debug-addr is
// precisely not to hang these off the public DefaultServeMux).
func debugMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", reg.Handler())
	return mux
}

func run(args []string) error {
	fs := flag.NewFlagSet("ldpserver", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		name      = fs.String("dataset", "br", "schema to serve: br or mx")
		eps       = fs.Float64("eps", 1, "privacy budget the clients use")
		shards    = fs.Int("shards", runtime.GOMAXPROCS(0), "aggregation shards (ingest concurrency)")
		rangeOn   = fs.Bool("range", false, "register the range-query task")
		buckets   = fs.Int("buckets", 0, "range hierarchy buckets (power of two; 0 = 256)")
		gridCell  = fs.Int("gridcells", 0, "range 2-D grid resolution per axis (0 = 8)")
		logdir    = fs.String("logdir", "", "report log directory (empty = no persistence)")
		qStale    = fs.Int64("query-staleness", 0, "serve cached query views trailing ingest by up to this many reports (0 = exact)")
		qMaxAge   = fs.Duration("query-maxage", 0, "rebuild cached query views older than this (0 = no age bound)")
		incFrac   = fs.Float64("incremental", 0.25, "incremental view rebuild crossover: fold only ingest deltas when they are at most this fraction of the watermark (0 = always full snapshots)")
		sgdOn     = fs.Bool("sgd", false, "register the federated LDP-SGD gradient task")
		sgdRnds   = fs.Int("sgdrounds", 20, "federated SGD rounds")
		sgdGroup  = fs.Int("sgdgroup", 512, "gradient reports per SGD round")
		sgdEta    = fs.Float64("sgdeta", 1.0, "SGD learning-rate scale (gamma_t = eta/sqrt(t))")
		sgdLam    = fs.Float64("sgdlambda", 1e-4, "L2 regularization weight clients train with")
		debugAddr = fs.String("debug-addr", "", "operator debug listener (pprof, expvar, metrics); empty = off")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, or error (debug logs every request)")
		logFormat = fs.String("log-format", "text", "log format: text or json")
		mode      = fs.String("mode", "root", "cluster role: root (accepts /v1/merge pushes) or edge (forwards to -push-to)")
		pushTo    = fs.String("push-to", "", "edge mode: root aggregator base URL (e.g. http://root:8080)")
		pushIvl   = fs.Duration("push-interval", 5*time.Second, "edge mode: fan-in push cadence")
		edgeID    = fs.String("edge-id", "", "edge mode: stable edge identifier (default: the listen address)")
		logSync   = fs.Duration("log-sync", 0, "group-commit the report log: fsync on this interval instead of buffering unsynced (0 = legacy unbuffered writes)")
		logSyncB  = fs.Int("log-sync-bytes", 256<<10, "group-commit byte threshold: commit early once this many buffered bytes accumulate")
		drain     = fs.Duration("drain", 10*time.Second, "graceful shutdown: how long SIGINT/SIGTERM waits for in-flight requests before closing connections")
		maxInFl   = fs.Int("max-inflight", 256, "admission control: mutating requests decoded concurrently; beyond it requests are shed with 429 (0 = default 256, negative = no limiter)")
		reqTmo    = fs.Duration("request-timeout", 30*time.Second, "admission control: per-request deadline for admitted mutating requests (0 = unbounded)")
		pushChaos = fs.String("push-chaos", "", "edge mode: deterministic fault-injection plan for the push path, e.g. seed=7,drop=0.2,blackhole=0.1 (testing only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	switch *mode {
	case "root":
		if *pushTo != "" {
			return fmt.Errorf("-push-to only makes sense with -mode edge")
		}
		if *pushChaos != "" {
			return fmt.Errorf("-push-chaos only makes sense with -mode edge")
		}
	case "edge":
		if *pushTo == "" {
			return fmt.Errorf("-mode edge requires -push-to URL")
		}
		if *sgdOn {
			return fmt.Errorf("-sgd cannot run on an edge: federated training state does not fan in")
		}
	default:
		return fmt.Errorf("unknown -mode %q (want root or edge)", *mode)
	}
	var c *dataset.Census
	switch *name {
	case "br":
		c = dataset.NewBR()
	case "mx":
		c = dataset.NewMX()
	default:
		return fmt.Errorf("unknown dataset %q (want br or mx)", *name)
	}

	reg := telemetry.NewRegistry()
	opts := []pipeline.Option{
		pipeline.WithShards(*shards),
		pipeline.WithQueryStaleness(*qStale, *qMaxAge),
		pipeline.WithIncrementalView(*incFrac),
		pipeline.WithTelemetry(reg),
	}
	if *rangeOn {
		opts = append(opts, pipeline.WithRange(rangequery.Config{Buckets: *buckets, GridCells: *gridCell}))
	}
	if *sgdOn {
		opts = append(opts, pipeline.WithGradient(pipeline.GradientConfig{
			Dim:       c.ERMDim(),
			Rounds:    *sgdRnds,
			GroupSize: *sgdGroup,
			Eta:       *sgdEta,
			Lambda:    *sgdLam,
		}))
	}
	p, err := pipeline.New(c.Schema(), *eps, opts...)
	if err != nil {
		return err
	}

	var sink transport.Sink
	var wal *reportlog.Writer
	var walClose func() error
	if *logdir != "" {
		stats, err := reportlog.Recover(*logdir)
		if err != nil {
			return fmt.Errorf("recover report log: %w", err)
		}
		if stats.Records > 0 {
			n, err := transport.ReplayPipeline(p, func(fn func([]byte) error) error {
				_, err := reportlog.Replay(*logdir, fn)
				return err
			})
			if err != nil {
				return fmt.Errorf("replay report log: %w", err)
			}
			logger.Info("replayed report log", "reports", n, "dir", *logdir)
		}
		var logOpts []reportlog.Option
		if *logSync > 0 {
			logOpts = append(logOpts, reportlog.WithGroupCommit(*logSync, *logSyncB))
		}
		w, err := reportlog.Open(*logdir, 64<<20, logOpts...)
		if err != nil {
			return err
		}
		// walClose runs at most once: either explicitly at the end of the
		// shutdown sequence (where its error is checked — the final commit
		// is what makes a clean restart lossless) or via the deferred
		// cleanup on early error returns.
		walClosed := false
		walClose = func() error {
			if walClosed {
				return nil
			}
			walClosed = true
			return w.Close()
		}
		defer func() { _ = walClose() }()
		sink, wal = w, w
	}

	publishExpvar.Do(func() { expvar.Publish("ldp", reg.Expvar()) })
	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	// The forwarder is built before the server so its breaker can feed the
	// readiness probe: an edge whose root is unreachable keeps serving
	// local queries but reports not-ready for new fan-in-dependent work.
	var fw *cluster.Forwarder
	if *mode == "edge" {
		id := *edgeID
		if id == "" {
			id = *addr
		}
		cfg := cluster.ForwarderConfig{
			RootURL:  *pushTo,
			EdgeID:   id,
			Interval: *pushIvl,
			Logger:   logger,
			Registry: reg,
		}
		if wal != nil {
			// Fsync the report log before every push: everything the root
			// acknowledges is then locally durable, so an edge crash can
			// only replay a superset of the acked baseline — never less.
			cfg.Sync = wal.Sync
		}
		if *pushChaos != "" {
			plan, err := chaos.ParsePlan(*pushChaos)
			if err != nil {
				return err
			}
			cfg.HTTPClient = plan.Client(30 * time.Second)
			logger.Warn("push chaos enabled (testing only)", "plan", *pushChaos)
		}
		fw, err = cluster.NewForwarder(p, cfg)
		if err != nil {
			return err
		}
	}

	var ready []transport.ReadyCheck
	if wal != nil {
		ready = append(ready, transport.ReadyCheck{Name: "wal", Check: wal.Healthy})
	}
	if fw != nil {
		ready = append(ready, transport.ReadyCheck{Name: "fanin-breaker", Check: func() error {
			if fw.Breaker().State() == cluster.BreakerOpen {
				return errors.New("push breaker open (root unreachable)")
			}
			return nil
		}})
	}
	srvOpts := []transport.ServerOption{
		transport.WithServerTelemetry(reg),
		transport.WithRequestLog(logger),
		transport.WithReadyChecks(ready...),
	}
	if *maxInFl >= 0 {
		srvOpts = append(srvOpts, transport.WithAdmission(transport.AdmissionConfig{
			MaxInFlight: *maxInFl,
			Timeout:     *reqTmo,
		}))
	}
	ps := transport.NewPipelineServer(p, sink, srvOpts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           ps,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Lifecycle: run the listener (and the forwarder loop) in the
	// background and block on the first of "listener died" or "signal
	// received". A second signal during the drain kills the process the
	// default way — stop() restores default handling before draining.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fwCtx, fwCancel := context.WithCancel(context.Background())
	defer fwCancel()
	var fwDone chan struct{}
	if fw != nil {
		fwDone = make(chan struct{})
		go func() {
			defer close(fwDone)
			fw.Run(fwCtx)
		}()
		logger.Info("fan-in forwarder started", "root", *pushTo, "interval", *pushIvl)
	}

	tasks := ""
	for _, t := range p.Tasks() {
		if tasks != "" {
			tasks += ","
		}
		tasks += t.Name()
	}
	logger.Info("unified aggregator listening",
		"addr", *addr, "mode", *mode, "dataset", *name, "dim", c.Schema().Dim(),
		"eps", *eps, "tasks", tasks, "shards", p.Shards())

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutdown signal received", "drain", *drain)

	// Shutdown order matters: flip readiness first (load balancers stop
	// routing), drain the listener, stop the push loop, make one final
	// best-effort push, and only then commit and close the report log —
	// the WAL must outlive everything that appends to it.
	ps.SetDraining(true)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain deadline exceeded; closing remaining connections", "err", err)
		srv.Close()
	}
	if dbg != nil {
		dbg.Close()
	}
	if fw != nil {
		fwCancel()
		<-fwDone
		pushCtx, cancelPush := context.WithTimeout(context.Background(), *drain)
		if err := fw.Push(pushCtx); err != nil && !errors.Is(err, cluster.ErrBreakerOpen) {
			logger.Warn("final fan-in push failed; reports remain locally durable", "err", err)
		}
		cancelPush()
	}
	if walClose != nil {
		if err := walClose(); err != nil {
			return fmt.Errorf("close report log: %w", err)
		}
	}
	logger.Info("shutdown complete")
	return nil
}
