// Command ldpserver runs the aggregator service: it accepts randomized
// reports over HTTP, optionally persists them to a crash-recoverable
// report log, and serves mean/frequency estimates.
//
// Usage:
//
//	ldpserver -addr :8080 -dataset br -eps 1 -logdir /var/lib/ldp
//
// The schema (and the privacy budget, which fixes the oracle debiasing
// parameters) must match what the clients use. On startup, any existing
// report log is recovered and replayed so estimates survive restarts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/reportlog"
	"ldp/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ldpserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ldpserver", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:8080", "listen address")
		name   = fs.String("dataset", "br", "schema to serve: br or mx")
		eps    = fs.Float64("eps", 1, "privacy budget the clients use")
		logdir = fs.String("logdir", "", "report log directory (empty = no persistence)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var c *dataset.Census
	switch *name {
	case "br":
		c = dataset.NewBR()
	case "mx":
		c = dataset.NewMX()
	default:
		return fmt.Errorf("unknown dataset %q (want br or mx)", *name)
	}

	pm := func(e float64) (mech.Mechanism, error) { return core.NewPiecewise(e) }
	oue := func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) }
	col, err := core.NewCollector(c.Schema(), *eps, pm, oue)
	if err != nil {
		return err
	}
	agg := core.NewAggregator(col)

	var sink transport.Sink
	if *logdir != "" {
		stats, err := reportlog.Recover(*logdir)
		if err != nil {
			return fmt.Errorf("recover report log: %w", err)
		}
		if stats.Records > 0 {
			n, err := transport.Replay(agg, func(fn func([]byte) error) error {
				_, err := reportlog.Replay(*logdir, fn)
				return err
			})
			if err != nil {
				return fmt.Errorf("replay report log: %w", err)
			}
			log.Printf("replayed %d reports from %s", n, *logdir)
		}
		w, err := reportlog.Open(*logdir, 64<<20)
		if err != nil {
			return err
		}
		defer w.Close()
		sink = w
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           transport.NewServer(agg, sink),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("aggregator for %q (d=%d, eps=%g, k=%d) listening on %s",
		*name, c.Schema().Dim(), *eps, col.K(), *addr)
	return srv.ListenAndServe()
}
