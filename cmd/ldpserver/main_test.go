package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ldp/internal/telemetry"
)

func TestRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestRejectsBadEps(t *testing.T) {
	if err := run([]string{"-dataset", "br", "-eps", "-1", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for negative eps")
	}
}

func TestRejectsBadLogDir(t *testing.T) {
	// A log directory that is actually a file must fail before serving.
	if err := run([]string{"-dataset", "br", "-logdir", "/dev/null/xx", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for unusable log directory")
	}
}

func TestRejectsBadLogLevel(t *testing.T) {
	if err := run([]string{"-dataset", "br", "-log-level", "loud", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for unknown log level")
	}
}

func TestRejectsBadLogFormat(t *testing.T) {
	if err := run([]string{"-dataset", "br", "-log-format", "xml", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for unknown log format")
	}
}

func TestNewLoggerAcceptsAllLevels(t *testing.T) {
	for _, lvl := range []string{"debug", "info", "warn", "error", "DEBUG", "WARN"} {
		for _, format := range []string{"text", "json"} {
			if _, err := newLogger(lvl, format); err != nil {
				t.Errorf("newLogger(%q, %q): %v", lvl, format, err)
			}
		}
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("ldp_test_total", "Test counter.").Inc()
	mux := debugMux(reg)
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/metrics"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "ldp_test_total 1") {
		t.Errorf("debug /metrics missing registered counter:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if !strings.Contains(rec.Body.String(), "memstats") {
		t.Error("debug /debug/vars is not the expvar handler")
	}
}
