package main

import "testing"

func TestRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestRejectsBadEps(t *testing.T) {
	if err := run([]string{"-dataset", "br", "-eps", "-1", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for negative eps")
	}
}

func TestRejectsBadLogDir(t *testing.T) {
	// A log directory that is actually a file must fail before serving.
	if err := run([]string{"-dataset", "br", "-logdir", "/dev/null/xx", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("want error for unusable log directory")
	}
}
