package ldp

import (
	"log/slog"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/pipeline"
	"ldp/internal/telemetry"
	"ldp/internal/transport"
)

// The unified task-based pipeline. A Pipeline is the system of the paper's
// Section II as one object: users are routed to one of the registered
// tasks (mean, frequency, range), randomize their tuple locally under the
// full budget eps, and the aggregator folds every task's reports into one
// sharded state that answers every query kind.
//
//	sch, _ := ldp.NewSchema(
//	    ldp.Attribute{Name: "age", Kind: ldp.Numeric},
//	    ldp.Attribute{Name: "gender", Kind: ldp.Categorical, Cardinality: 2},
//	)
//	p, _ := ldp.New(sch, 1.0, ldp.WithMechanism(ldp.HM), ldp.WithOracle(ldp.OUE),
//	    ldp.WithRange(ldp.RangeConfig{}), ldp.WithShards(8))
//
//	rep, _ := p.Randomize(tuple, r) // on the user's device
//	_ = p.Add(rep)                  // at the aggregator
//
//	res := p.View() // epoch-cached; p.Snapshot() forces a rebuild
//	mean, _ := res.Mean("age")
//	freqs, _ := res.Freq("gender")
//	mass, _ := res.Range(ldp.RangeQuery{Attr: "age", Lo: -0.4, Hi: -0.2})
type (
	// Pipeline is the unified collector/aggregator.
	Pipeline = pipeline.Pipeline
	// PipelineOption configures a Pipeline under construction.
	PipelineOption = pipeline.Option
	// Task is one randomization sub-task of a Pipeline (MeanTask,
	// FreqTask, or RangeTask).
	Task = pipeline.Task
	// TaskKind tags a task and its reports.
	TaskKind = pipeline.TaskKind
	// MeanTask estimates numeric means (Algorithm 4 over numeric attrs).
	MeanTask = pipeline.MeanTask
	// FreqTask estimates categorical frequencies.
	FreqTask = pipeline.FreqTask
	// RangeTask answers 1-D/2-D range queries.
	RangeTask = pipeline.RangeTask
	// GradientTask randomizes clipped user gradients for federated
	// LDP-SGD (registered with WithGradient).
	GradientTask = pipeline.GradientTask
	// GradientConfig parameterizes the federated SGD task.
	GradientConfig = pipeline.GradientConfig
	// Trainer is the server-side federated SGD coordinator: it fills
	// rounds with gradient reports and advances the published model.
	Trainer = pipeline.Trainer
	// Model is an immutable published model snapshot (Trainer.Model).
	Model = pipeline.Model
	// Report is one user's randomized submission: exactly one task's
	// payload under a task tag. (The legacy Algorithm-4 report type is
	// CollectorReport.)
	Report = pipeline.Report
	// Result is an immutable snapshot of a Pipeline's aggregate state
	// with Mean/Freq/Range queries.
	Result = pipeline.Result
	// RangeQuery describes a 1-D or conjunctive 2-D range query against
	// a Result.
	RangeQuery = pipeline.RangeQuery
	// ReportBatch is a reusable columnar batch of reports: the unit of
	// work of the ingest hot path (Pipeline.AddBatch folds one whole
	// batch under a single lock acquisition per shard).
	ReportBatch = pipeline.ReportBatch
)

// Task kinds.
const (
	// TaskMean tags mean-task reports.
	TaskMean = pipeline.TaskMean
	// TaskFreq tags freq-task reports.
	TaskFreq = pipeline.TaskFreq
	// TaskRange tags range-task reports.
	TaskRange = pipeline.TaskRange
	// TaskJoint tags legacy Algorithm-4 mixed reports (decoded from v1
	// wire frames; new pipelines never produce it).
	TaskJoint = pipeline.TaskJoint
	// TaskGradient tags federated SGD gradient reports.
	TaskGradient = pipeline.TaskGradient
)

// New builds the unified pipeline for schema s at total per-user budget
// eps. Tasks are derived from the schema: a mean task when s has numeric
// attributes, a freq task when it has categorical attributes, and a range
// task when WithRange is given.
func New(s *Schema, eps float64, opts ...PipelineOption) (*Pipeline, error) {
	return pipeline.New(s, eps, opts...)
}

// WithMechanism selects the numeric 1-D mechanism factory (default HM).
func WithMechanism(f MechanismFactory) PipelineOption { return pipeline.WithMechanism(f) }

// WithOracle selects the frequency-oracle factory (default OUE).
func WithOracle(f OracleFactory) PipelineOption { return pipeline.WithOracle(f) }

// WithRange registers the range-query task (the zero RangeConfig selects
// B=256 hierarchy buckets, 8x8 grids, and the pipeline's oracle).
func WithRange(cfg RangeConfig) PipelineOption { return pipeline.WithRange(cfg) }

// WithShards sets the number of aggregation shards (default 1; servers
// should set it near GOMAXPROCS).
func WithShards(n int) PipelineOption { return pipeline.WithShards(n) }

// WithTaskWeight sets the routing weight of a registered task (default 1
// each; weights are normalized, 0 disables routing to the task).
func WithTaskWeight(kind TaskKind, w float64) PipelineOption {
	return pipeline.WithTaskWeight(kind, w)
}

// WithQueryStaleness bounds how stale the epoch-cached query view
// (Pipeline.View) may get before a query rebuilds it: the cached Result
// is served while it trails the ingest watermark by at most `reports`
// reports and is younger than maxAge (0 disables the age bound). The
// default bound of 0 reports serves the cache only while no new report
// has arrived, so queries are always exact; servers answering heavy
// dashboard traffic under full-rate ingest should set a real bound.
// Result.Epoch, Result.Watermark, and Result.BuiltAt identify a cached
// view; Result.FreqView and Result.RangeView answer from it without
// allocating.
func WithQueryStaleness(reports int64, maxAge time.Duration) PipelineOption {
	return pipeline.WithQueryStaleness(reports, maxAge)
}

// WithIncrementalView tunes the crossover of incremental view rebuilds:
// when the ingest delta since the cached view is at most maxDeltaFrac of
// the watermark, a rebuild folds only the dirty shards' count deltas into
// the previous view's immutable state instead of re-summing the whole
// domain; estimates are bit-identical either way. maxDeltaFrac must be in
// [0, 1]; 0 disables incremental maintenance. The default is 0.25.
func WithIncrementalView(maxDeltaFrac float64) PipelineOption {
	return pipeline.WithIncrementalView(maxDeltaFrac)
}

// TelemetryRegistry collects the system's metrics: zero-allocation
// counters, gauges, and latency histograms with Prometheus text
// exposition (Handler/WriteProm) and an expvar bridge (Expvar). One
// registry is shared across the pipeline and its HTTP server.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry returns an empty metrics registry; pass it to
// WithTelemetry and WithServerTelemetry to instrument a deployment.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// WithTelemetry registers the pipeline's ingest, view-cache, and trainer
// metrics on reg. The fold loops gain no atomics: hot counters are
// per-batch, and aggregate counts are read from existing state at scrape
// time, so the instrumented ingest path stays allocation-free and within
// measurement noise of the plain one.
func WithTelemetry(reg *TelemetryRegistry) PipelineOption { return pipeline.WithTelemetry(reg) }

// WithGradient registers the federated LDP-SGD task: the pipeline grows a
// Trainer that fills rounds with clipped, randomized gradient reports and
// advances the published model one SGD step per round. Clients randomize
// with GradientTask.RandomizeGradient (or SGDClient over HTTP); tuples
// are never routed to this task.
func WithGradient(cfg GradientConfig) PipelineOption { return pipeline.WithGradient(cfg) }

// NewReportBatch returns an empty report batch. Continuous ingest should
// prefer GetBatch/PutBatch, which recycle grown buffers through a pool.
func NewReportBatch() *ReportBatch { return pipeline.NewReportBatch() }

// GetBatch returns an empty report batch from the package pool; return it
// with PutBatch to keep the steady-state ingest path allocation-free.
func GetBatch() *ReportBatch { return pipeline.GetBatch() }

// PutBatch resets a batch and returns it to the package pool.
func PutBatch(b *ReportBatch) { pipeline.PutBatch(b) }

// EncodeReport serializes a unified report into the versioned,
// task-multiplexed binary wire envelope.
func EncodeReport(rep Report) ([]byte, error) { return transport.EncodeEnvelope(rep) }

// AppendReport appends a report's wire envelope to dst and returns the
// extended buffer; with a reused buffer it allocates nothing, so a whole
// batch upload can be assembled without per-report allocation.
func AppendReport(dst []byte, rep Report) ([]byte, error) { return transport.AppendEnvelope(dst, rep) }

// DecodeReportBatch decodes a buffer of concatenated report frames (any
// format DecodeReport accepts, freely mixed) into a columnar batch, ready
// for Pipeline.AddBatch, and returns the number of frames decoded.
func DecodeReportBatch(body []byte, b *ReportBatch) (int, error) {
	return transport.DecodeBatch(body, b)
}

// DecodeReport parses any report frame the system has ever produced into
// a unified report: v2 envelopes, legacy v1 Algorithm-4 frames (as
// TaskJoint), and legacy v1 range frames (as TaskRange).
func DecodeReport(frame []byte) (Report, error) { return transport.DecodeEnvelope(frame) }

// The unified HTTP pipeline.
type (
	// PipelineServer serves ingest and queries for a Pipeline on a
	// single route pair (POST /v1/report, GET /v1/query).
	PipelineServer = transport.PipelineServer
	// PipelineClient randomizes locally and submits envelope frames,
	// singly or in batches, with context support.
	PipelineClient = transport.PipelineClient
	// ClientOption configures the HTTP behavior of transport clients.
	ClientOption = transport.ClientOption
	// SGDClient runs the user's side of federated LDP-SGD over HTTP:
	// poll the model, compute the local gradient, submit its clipped
	// randomization.
	SGDClient = transport.SGDClient
	// ModelState is the JSON body of GET /v1/model.
	ModelState = transport.ModelState
	// ServerOption configures a PipelineServer under construction.
	ServerOption = transport.ServerOption
)

// NewPipelineServer wraps a pipeline (and optional persistence sink; nil
// disables persistence) in an HTTP handler.
func NewPipelineServer(p *Pipeline, sink transport.Sink, opts ...ServerOption) *PipelineServer {
	return transport.NewPipelineServer(p, sink, opts...)
}

// WithServerTelemetry registers the server's per-route HTTP metrics
// (requests by status class, latency, bytes, 304s, decode-error taxonomy)
// on reg and serves the whole registry on GET /metrics.
func WithServerTelemetry(reg *TelemetryRegistry) ServerOption {
	return transport.WithServerTelemetry(reg)
}

// WithRequestLog emits one structured debug-level log line per request
// through log; at higher levels the request path pays only an Enabled
// check.
func WithRequestLog(log *slog.Logger) ServerOption { return transport.WithRequestLog(log) }

// NewPipelineClient builds an HTTP client for the aggregator at baseURL,
// randomizing through the given pipeline.
func NewPipelineClient(baseURL string, p *Pipeline, opts ...ClientOption) *PipelineClient {
	return transport.NewPipelineClient(baseURL, p, opts...)
}

// NewSGDClient builds a federated SGD client for the aggregator at
// baseURL; the pipeline must be built with the server's WithGradient
// configuration, and task/lambda select the trained loss.
var NewSGDClient = transport.NewSGDClient

// EncodeGradientReport serializes a gradient report into the versioned
// wire envelope (AppendReport/EncodeReport also accept gradient reports).
var EncodeGradientReport = transport.EncodeGradientReport

// WithHTTPClient uses a custom *http.Client for a transport client.
var WithHTTPClient = transport.WithHTTPClient

// WithTimeout bounds each transport-client request.
var WithTimeout = transport.WithTimeout

// RetryPolicy bounds retries of transient transport failures with
// exponential backoff and full jitter.
type RetryPolicy = cluster.RetryPolicy

// DefaultRetryPolicy is the policy WithRetry and the cluster forwarder
// use when fields are left zero.
var DefaultRetryPolicy = cluster.DefaultRetryPolicy

// WithRetry makes a transport client retry batch uploads on connection
// errors and 5xx responses. Safe because the server persists and folds
// a batch only after fully validating it: a failed request ingested
// nothing, so a retry cannot double-count.
var WithRetry = transport.WithRetry

// Forwarder pushes an edge pipeline's aggregate state to a root
// aggregator's POST /v1/merge as exactly-once snapshot deltas; run one
// per edge process (see cmd/ldpserver -mode edge).
type Forwarder = cluster.Forwarder

// ForwarderConfig configures a Forwarder.
type ForwarderConfig = cluster.ForwarderConfig

// NewForwarder builds a fan-in forwarder for an edge pipeline.
var NewForwarder = cluster.NewForwarder

// BreakerConfig tunes the forwarder's push circuit breaker (failure
// threshold, cooldown, cooldown cap). Zero fields pick defaults.
type BreakerConfig = cluster.BreakerConfig

// ErrBreakerOpen reports a push skipped because the forwarder's circuit
// breaker is open: the root failed repeatedly and the cooldown has not
// elapsed, so the cycle fails fast instead of doing snapshot + network
// work that cannot succeed.
var ErrBreakerOpen = cluster.ErrBreakerOpen

// RetryAfterError wraps a retryable failure with the server's
// Retry-After hint; retry policies use the hint as a backoff floor.
type RetryAfterError = cluster.RetryAfterError

// AdmissionConfig bounds the mutating work a PipelineServer accepts:
// requests beyond MaxInFlight are shed with 429 + Retry-After before
// their body is read.
type AdmissionConfig = transport.AdmissionConfig

// WithAdmission enables admission control on a PipelineServer's
// mutating routes.
func WithAdmission(cfg AdmissionConfig) ServerOption { return transport.WithAdmission(cfg) }

// ReadyCheck is one named readiness probe evaluated by GET /readyz.
type ReadyCheck = transport.ReadyCheck

// WithReadyChecks adds readiness probes to a PipelineServer (e.g. WAL
// health, an edge's push breaker).
func WithReadyChecks(checks ...ReadyCheck) ServerOption {
	return transport.WithReadyChecks(checks...)
}

// ReplayPipeline rebuilds pipeline state from persisted frames (any
// format DecodeReport accepts), e.g. at startup with reportlog.Replay.
func ReplayPipeline(p *Pipeline, frames func(fn func(payload []byte) error) error) (int, error) {
	return transport.ReplayPipeline(p, frames)
}
