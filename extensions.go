package ldp

import (
	"ldp/internal/audit"
	"ldp/internal/freq"
	"ldp/internal/hist"
	"ldp/internal/mech"
)

// Distribution estimation (histograms over a numeric attribute).
type (
	// HistogramCollector randomizes a numeric value's bin membership.
	HistogramCollector = hist.Collector
	// HistogramEstimator aggregates responses into a distribution
	// estimate with mean/quantile/range queries.
	HistogramEstimator = hist.Estimator
)

// NewHistogramCollector builds a histogram collector over [-1, 1] with the
// given bin count; oracle may be nil to use OUE.
func NewHistogramCollector(eps float64, bins int, oracle OracleFactory) (*HistogramCollector, error) {
	var f freq.Factory
	if oracle != nil {
		f = freq.Factory(oracle)
	}
	return hist.NewCollector(eps, bins, f)
}

// NewHistogramEstimator builds the matching aggregator-side estimator.
func NewHistogramEstimator(c *HistogramCollector) *HistogramEstimator {
	return hist.NewEstimator(c)
}

// ProjectSimplex returns the Euclidean projection of v onto the
// probability simplex (useful for post-processing any debiased frequency
// vector).
func ProjectSimplex(v []float64) []float64 { return hist.ProjectSimplex(v) }

// Privacy auditing.
type (
	// AuditConfig tunes the black-box eps-LDP audit.
	AuditConfig = audit.Config
	// AuditResult is the audit verdict.
	AuditResult = audit.Result
)

// Audit empirically checks a mechanism's eps-LDP guarantee from samples
// alone: it discretizes outputs for a grid of input pairs and bounds the
// binned likelihood ratios with exact one-sided Clopper-Pearson
// confidence bounds. A Violated result is statistical evidence the
// mechanism leaks more than its claimed Epsilon; the returned
// EmpiricalEps is the audit's lower confidence bound on the true leakage.
// The internal/audit package additionally audits frequency oracles, range
// encoders, and whole pipelines end to end over the wire format.
func Audit(m Mechanism, cfg AuditConfig) (AuditResult, error) {
	return audit.Mechanism(mech.Mechanism(m), cfg)
}
